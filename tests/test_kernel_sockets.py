"""Kernel tests: sockets, pipes, ptys, flow control, framing."""

import pytest

from repro.cluster import build_cluster
from repro.errors import SyscallError
from repro.kernel.streams import FrameAssembler
from repro.kernel.syscalls import connect_retry, recv_frame, send_frame


@pytest.fixture()
def world():
    return build_cluster(n_nodes=3, seed=3)


def run(world):
    world.engine.run()
    assert not world.scheduler.failures, world.scheduler.failures


def test_tcp_client_server_roundtrip(world):
    log = []

    def server(sys, argv):
        lfd = yield from sys.socket()
        addr = yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        chunk = yield from sys.recv(cfd)
        log.append(("server got", chunk.data))
        yield from sys.send(cfd, 5, data=b"reply")

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        yield from sys.send(fd, 5, data=b"hello")
        chunk = yield from sys.recv(fd)
        log.append(("client got", chunk.data))

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node01", "client")
    run(world)
    assert ("server got", b"hello") in log
    assert ("client got", b"reply") in log


def test_connect_to_nothing_refused(world):
    errs = []

    def client(sys, argv):
        fd = yield from sys.socket()
        try:
            yield from connect_retry(sys, fd, "node00", 9999)
        except SyscallError as e:
            errs.append(e.errno)

    world.register_program("c", client)
    world.spawn_process("node01", "c")
    run(world)
    assert errs == ["ECONNREFUSED"]


def test_flow_control_blocks_fast_sender(world):
    """Sender of 1 MB into a 64 KB buffer must wait for the reader."""
    times = {}

    def server(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        yield from sys.sleep(10.0)  # slow reader
        got = 0
        while got < 64 * 1024 * 16:
            chunk = yield from sys.recv(cfd)
            got += chunk.nbytes
        times["read_done"] = yield from sys.time()

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        for _ in range(16):
            yield from sys.send(fd, 64 * 1024)
        times["send_done"] = yield from sys.time()

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node01", "client")
    run(world)
    # sender cannot finish before the reader starts draining at t=10
    assert times["send_done"] > 9.0


def test_eof_on_close(world):
    log = []

    def server(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        while True:
            chunk = yield from sys.recv(cfd)
            if chunk is None:
                log.append("eof")
                break
            log.append(chunk.data)

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        yield from sys.send(fd, 1, data=b"x")
        yield from sys.close(fd)

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node01", "client")
    run(world)
    assert log == [b"x", "eof"]


def test_loopback_connection_same_node(world):
    log = []

    def main(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 7000)
        yield from sys.listen(lfd)

        def client_thread(sys2):
            fd = yield from sys2.socket()
            yield from connect_retry(sys2, fd, "node00", 7000)
            yield from sys2.send(fd, 2, data=b"lo")

        tid = yield from sys.thread_create(client_thread)
        cfd = yield from sys.accept(lfd)
        chunk = yield from sys.recv(cfd)
        log.append(chunk.data)
        yield from sys.thread_join(tid)

    world.register_program("lo", main)
    world.spawn_process("node00", "lo")
    run(world)
    assert log == [b"lo"]


def test_unix_domain_socket_by_path(world):
    log = []

    def server(sys, argv):
        lfd = yield from sys.socket("unix")
        yield from sys.bind(lfd, path="/tmp/app.sock")
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        chunk = yield from sys.recv(cfd)
        log.append(chunk.data)

    def client(sys, argv):
        yield from sys.sleep(0.1)
        fd = yield from sys.socket("unix")
        yield from connect_retry(sys, fd, "node00", path="/tmp/app.sock")
        yield from sys.send(fd, 3, data=b"uds")

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node00", "client")
    run(world)
    assert log == [b"uds"]


def test_pipe_directionality(world):
    errs = []
    log = []

    def main(sys, argv):
        r, w = yield from sys.pipe()
        try:
            yield from sys.send(r, 1, data=b"!")
        except SyscallError as e:
            errs.append(e.errno)
        yield from sys.send(w, 2, data=b"ok")
        chunk = yield from sys.recv(r)
        log.append(chunk.data)

    world.register_program("p", main)
    world.spawn_process("node00", "p")
    run(world)
    assert errs == ["EBADF"]
    assert log == [b"ok"]


def test_socketpair_bidirectional(world):
    log = []

    def main(sys, argv):
        a, b = yield from sys.socketpair()
        yield from sys.send(a, 1, data=b"1")
        yield from sys.send(b, 1, data=b"2")
        log.append((yield from sys.recv(b)).data)
        log.append((yield from sys.recv(a)).data)

    world.register_program("sp", main)
    world.spawn_process("node00", "sp")
    run(world)
    assert log == [b"1", b"2"]


def test_framing_roundtrip_large_message(world):
    got = []

    def server(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        asm = FrameAssembler()
        payload, size = yield from recv_frame(sys, cfd, asm)
        got.append((payload, size))

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        yield from send_frame(sys, fd, {"msg": "big"}, 1_000_000)

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node01", "client")
    run(world)
    assert got == [({"msg": "big"}, 1_000_000)]


def test_transfer_time_scales_with_size(world):
    times = {}

    def server(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        asm = FrameAssembler()
        yield from recv_frame(sys, cfd, asm)
        times["done"] = yield from sys.time()

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        yield from send_frame(sys, fd, None, 125_000_000)  # 1s at GigE

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node01", "client")
    run(world)
    assert 1.0 <= times["done"] <= 1.6


def test_fcntl_setown_election_semantics(world):
    """Two processes sharing an FD: last F_SETOWN wins for both."""
    results = {}

    def child(sys):
        yield from sys.fcntl(10, "F_SETOWN", (yield from sys.getpid()))
        yield from sys.sleep(0.5)
        results["child_sees"] = yield from sys.fcntl(10, "F_GETOWN")
        yield from sys.exit(0)

    def main(sys, argv):
        a, b = yield from sys.socketpair()
        yield from sys.dup2(a, 10)
        pid = yield from sys.fork(child)
        yield from sys.sleep(0.1)  # child sets first...
        mypid = yield from sys.getpid()
        yield from sys.fcntl(10, "F_SETOWN", mypid)  # ...parent overwrites
        yield from sys.waitpid(pid)
        results["parent_sees"] = yield from sys.fcntl(10, "F_GETOWN")
        results["parent_pid"] = mypid

    world.register_program("elect", main)
    world.spawn_process("node00", "elect")
    run(world)
    assert results["child_sees"] == results["parent_pid"]
    assert results["parent_sees"] == results["parent_pid"]


def test_setsockopt_adjusts_buffer(world):
    def main(sys, argv):
        a, b = yield from sys.socketpair()
        yield from sys.setsockopt(b, "SO_RCVBUF", 128)
        yield from sys.send(a, 100, data=b"fits")

    world.register_program("so", main)
    world.spawn_process("node00", "so")
    run(world)


def test_pty_roundtrip_and_termios(world):
    log = {}

    def main(sys, argv):
        m, s = yield from sys.openpty()
        log["name"] = yield from sys.ptsname(s)
        yield from sys.tcsetattr(s, {"echo": 0, "rows": 50})
        log["attrs"] = yield from sys.tcgetattr(m)
        yield from sys.setsid()
        yield from sys.setctty(s)
        yield from sys.send(m, 3, data=b"cmd")
        log["slave_got"] = (yield from sys.recv(s)).data

    world.register_program("term", main)
    proc = world.spawn_process("node00", "term")
    run(world)
    assert log["name"].startswith("/dev/pts/")
    assert log["attrs"]["echo"] == 0 and log["attrs"]["rows"] == 50
    assert log["slave_got"] == b"cmd"
    assert proc.ctty is not None
    assert proc.ctty.session_sid == proc.sid


def test_proc_maps_renders_regions(world):
    out = {}

    def main(sys, argv):
        yield from sys.mmap(1 << 20, "numeric", kind="anon")
        out["maps"] = yield from sys.proc_maps()

    world.register_program("m", main)
    world.spawn_process("node00", "m")
    run(world)
    assert "[heap]" in out["maps"] or "rw-p" in out["maps"]
    assert len(out["maps"].splitlines()) >= 4  # spec regions + mmap


def test_shared_memory_attaches_same_region(world):
    results = {}

    def child(sys):
        rid = yield from sys.mmap(4096, "zero", shared=True, path="/tmp/shm1")
        results["child_rid"] = rid
        yield from sys.exit(0)

    def main(sys, argv):
        rid = yield from sys.mmap(4096, "zero", shared=True, path="/tmp/shm1")
        results["parent_rid"] = rid
        pid = yield from sys.fork(child)
        yield from sys.waitpid(pid)

    world.register_program("shm", main)
    world.spawn_process("node00", "shm")
    run(world)
    assert results["parent_rid"] == results["child_rid"]


def test_file_write_read_roundtrip_with_payload(world):
    out = {}

    def main(sys, argv):
        fd = yield from sys.open("/data/out.bin", "w")
        yield from sys.write(fd, 1000, payload={"answer": 42})
        yield from sys.close(fd)
        fd = yield from sys.open("/data/out.bin", "r")
        n, payload = yield from sys.read(fd, 1 << 30)
        out["n"] = n
        out["payload"] = payload
        yield from sys.close(fd)
        out["stat"] = yield from sys.stat("/data/out.bin")

    world.register_program("f", main)
    world.spawn_process("node00", "f")
    run(world)
    assert out["n"] == 1000
    assert out["payload"] == {"answer": 42}
    assert out["stat"]["size"] == 1000
