"""Deterministic fault injection and self-healing supervision.

The subsystem has three parts, mirroring how the paper's failure story
is exercised in practice:

* :mod:`repro.faults.plan` -- *what* goes wrong and when: an explicit
  schedule of :class:`FaultEvent`\\ s, or a seeded Poisson process
  parameterized by MTBF, so every chaos run replays bit-identically.
* :mod:`repro.faults.injector` -- *how* it goes wrong: node crashes
  (silent vanish, no FIN), network partitions and NIC flaps, ENOSPC on
  the checkpoint directory, CPU-hogged slow hosts, coordinator death.
  Events fire on virtual-time timers or on named checkpoint phases via
  tracer span hooks.
* :mod:`repro.faults.supervisor` -- *who* cleans up: the
  :class:`AutoRestartSupervisor` respawns a dead coordinator, detects a
  decimated computation, and restarts it from the newest *valid* (whole,
  checksummed) images with exponential backoff, relocating processes off
  dead nodes.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.supervisor import AutoRestartSupervisor, find_newest_valid_plan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "AutoRestartSupervisor",
    "find_newest_valid_plan",
]
