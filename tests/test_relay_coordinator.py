"""Distributed-coordinator mode (Section 6 future work, implemented):
per-node barrier relays combine arrivals before they reach the root."""

import pytest

from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation


@pytest.fixture()
def world():
    return build_cluster(n_nodes=4, seed=81)


def no_failures(world):
    assert not world.scheduler.failures, [
        (t.name, e) for t, e in world.scheduler.failures
    ]


def counter(world):
    log = []

    def main(sys, argv):
        for i in range(200):
            yield from sys.sleep(0.1)
            log.append(i)

    world.register_program("counter", main)
    return log


def test_relay_mode_checkpoints_correctly(world):
    log = counter(world)
    comp = DmtcpComputation(world, relay=True)
    for i in range(4):
        for _ in range(3):
            comp.launch(f"node{i:02d}", "counter")
    world.engine.run(until=1.0)
    outcome = comp.checkpoint()
    assert len(outcome.records) == 12
    n = len(log)
    world.engine.run(until=world.engine.now + 2.0)
    assert len(log) > n  # resumed
    no_failures(world)


def test_relay_mode_reduces_root_barrier_messages(world):
    """The combining tree delivers O(nodes), not O(processes), barrier
    messages to the root."""
    counter(world)
    central = DmtcpComputation(world, coordinator_host="node00", port=7401,
                               ckpt_dir="/tmp/c1", relay=False)
    for i in range(4):
        for _ in range(3):
            central.launch(f"node{i:02d}", "counter")
    world.engine.run(until=1.0)
    central.checkpoint()
    central_msgs = central.state.barrier_messages

    world2 = build_cluster(n_nodes=4, seed=82)
    counter(world2)
    relayed = DmtcpComputation(world2, relay=True)
    for i in range(4):
        for _ in range(3):
            relayed.launch(f"node{i:02d}", "counter")
    world2.engine.run(until=1.0)
    relayed.checkpoint()
    relay_msgs = relayed.state.barrier_messages

    # 12 processes x 6 barriers centrally vs ~4 relays x 6 barriers
    assert central_msgs >= 12 * 5
    assert relay_msgs <= central_msgs / 2, (relay_msgs, central_msgs)
    assert not world2.scheduler.failures


def test_relay_mode_kill_and_restart(world):
    """Restart works under the distributed coordinator too (restored
    managers reach the restart barriers through their local relays)."""
    log = counter(world)
    comp = DmtcpComputation(world, relay=True)
    comp.launch("node00", "counter")
    comp.launch("node01", "counter")
    world.engine.run(until=1.0)
    comp.checkpoint(kill=True)
    n_at_kill = len(log)
    restart = comp.restart(placement={"node00": "node02", "node01": "node03"})
    assert restart.duration > 0
    world.engine.run(until=world.engine.now + 3.0)
    assert len(log) > n_at_kill
    no_failures(world)
