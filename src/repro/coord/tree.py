"""Propagation tree: gateway relays between managers and the coordinator.

Topology
--------
The gateways form an F-ary forest rooted at the coordinator.  Gateways
are numbered 0..G-1 in launch order (one per cluster node, in hostname
order); gateway ``i``'s parent is the coordinator for ``i < F`` and
gateway ``(i // F) - 1`` otherwise, so gateway ``g``'s children are the
contiguous block ``[(g+1)*F, (g+2)*F)``.  Depth is O(log_F n), and the
subtree under any gateway is one contiguous rank range per level --
which is why :class:`repro.coord.nodeset.RangeSet` arithmetic (not
per-object bookkeeping) is enough to route to a subtree.

Wire protocol (framed msgs, same transport as the star)
-------------------------------------------------------
Upstream, a gateway aggregates the barrier verb -- arrivals landing
within a short virtual-time window coalesce into one counted
``barrier-count`` delta, exactly the distributed barrier the paper's
Section 6 proposes -- and forwards every identity-bearing verb (hello,
ckpt-done, ckpt-failed, ...) verbatim, caching each hello it relays.
The root therefore keys tree members by ``(host, vpid)`` rather than by
connection, and no envelope or routing layer exists.

Downstream there are only broadcasts (do-checkpoint, abort, die: one
copy per gateway, fanned to every child) and per-name barrier releases
(each gateway releases exactly the children that contributed).

Failure semantics: a gateway that loses a *member* child reports
``member-gone`` with the barrier names already counted upstream, so the
root can decrement precisely; losing a child *gateway* makes the counts
below it unreconcilable, so the whole subtree is reported gone
(``subtree-gone``) and the root aborts any in-flight round.  A gateway
that loses its *upstream* first fans an abort down (no member may hang
on a release that will never come), then -- supervised -- reconnects
with backoff and replays its cached hellos so a respawned coordinator
relearns the subtree without the members noticing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.coord.nodeset import NodeSet, RangeSet
from repro.core import protocol as P
from repro.errors import SyscallError
from repro.resilience import RetryPolicy
from repro.kernel.process import ProgramSpec, RegionSpec
from repro.kernel.streams import FrameAssembler
from repro.kernel.syscalls import Sys, connect_retry, recv_frame, send_frame

__all__ = ["TreeTopology", "GATEWAY_PORT", "GATEWAY_SPEC", "make_gateway_program"]

#: Every gateway listens on the same well-known port of its own node.
GATEWAY_PORT = 7979

GATEWAY_SPEC = ProgramSpec(
    "dmtcp_gateway",
    regions=(
        RegionSpec("code", 128 * 1024, "code"),
        RegionSpec("heap", 256 * 1024, "text"),
    ),
)


@dataclass(frozen=True)
class TreeTopology:
    """Static shape of the gateway forest: pure rank arithmetic.

    ``n`` gateways with fanout ``f``; ranks 0..n-1.  Ranks < f hang
    directly off the coordinator ("top-level").  All methods are O(1)
    or O(depth); none materialize member lists.
    """

    n: int
    fanout: int

    def __post_init__(self):
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.n < 0:
            raise ValueError(f"n must be >= 0, got {self.n}")

    # -- shape ---------------------------------------------------------
    def parent(self, rank: int) -> Optional[int]:
        """Parent gateway rank, or None when the parent is the root."""
        self._check(rank)
        if rank < self.fanout:
            return None
        return rank // self.fanout - 1

    def children(self, rank: int) -> range:
        """Child gateway ranks of ``rank`` (clipped to n)."""
        self._check(rank)
        lo = (rank + 1) * self.fanout
        hi = (rank + 2) * self.fanout
        return range(min(lo, self.n), min(hi, self.n))

    def top_level(self) -> range:
        """Ranks connected directly to the coordinator."""
        return range(min(self.fanout, self.n))

    def depth(self, rank: int) -> int:
        """Hops from ``rank`` up to the coordinator (top-level = 1)."""
        self._check(rank)
        d = 1
        while rank >= self.fanout:
            rank = rank // self.fanout - 1
            d += 1
        return d

    @property
    def height(self) -> int:
        """Max hops from any gateway to the root: O(log_f n)."""
        return self.depth(self.n - 1) if self.n else 0

    def path(self, rank: int) -> tuple[int, ...]:
        """Root-to-rank chain of gateway ranks (first entry is top-level)."""
        self._check(rank)
        chain = [rank]
        while (p := self.parent(chain[0])) is not None:
            chain.insert(0, p)
        return tuple(chain)

    def subtree(self, rank: int) -> RangeSet:
        """All gateway ranks at or below ``rank``.

        Because each gateway's children are a contiguous block, every
        level of the subtree is one contiguous range: the whole subtree
        folds to O(depth) ranges, never O(members).
        """
        self._check(rank)
        ranges: list[tuple[int, int]] = []
        lo = hi = rank
        while lo < self.n:
            ranges.append((lo, min(hi, self.n - 1)))
            lo, hi = (lo + 1) * self.fanout, (hi + 2) * self.fanout - 1
        return RangeSet.from_ranges(ranges)

    # -- mapping to the cluster ---------------------------------------
    def hostnames(self, members: NodeSet) -> list[str]:
        """Gateway rank -> hostname, in NodeSet (deterministic) order."""
        if len(members) != self.n:
            raise ValueError(f"{len(members)} hostnames for {self.n} gateways")
        return [members[i] for i in range(self.n)]

    def subtree_nodes(self, rank: int, members: NodeSet) -> NodeSet:
        """The NodeSet served by ``rank``'s subtree (range arithmetic)."""
        out = NodeSet()
        for lo, hi in self.subtree(rank).ranges:
            out = out | members[lo : hi + 1]
        return out

    # -- internals -----------------------------------------------------
    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n:
            raise IndexError(f"gateway rank {rank} not in [0, {self.n})")

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    @staticmethod
    def ideal_height(n: int, fanout: int) -> int:
        """Closed-form expected height, for the O(log n) bench gate."""
        if n <= 0:
            return 0
        return max(1, math.ceil(math.log(n * (fanout - 1) + 1, fanout)) if fanout > 1 else n)


# ======================================================================
# The gateway relay program
# ======================================================================

def make_gateway_program(tracer=None):
    """Build the gateway program (registered as ``dmtcp_gateway``).

    ``tracer`` is the world tracer, used for host-side counters only --
    it never charges simulated time, so enabling the tree cannot perturb
    unrelated virtual-time measurements.
    """

    def gateway_main(sys: Sys, argv):
        parent_host = yield from sys.getenv("DMTCP_GW_PARENT_HOST")
        parent_port = int((yield from sys.getenv("DMTCP_GW_PARENT_PORT")))
        port = int((yield from sys.getenv("DMTCP_GW_PORT")))
        flush_s = float((yield from sys.getenv("DMTCP_TREE_FLUSH")) or 5e-4)
        heartbeat_s = float((yield from sys.getenv("DMTCP_GW_HEARTBEAT")) or 2.0)
        supervise = (yield from sys.getenv("DMTCP_SUPERVISE")) == "1"
        backoff = float((yield from sys.getenv("DMTCP_GW_BACKOFF")) or 0.25)
        backoff_max = float((yield from sys.getenv("DMTCP_GW_BACKOFF_MAX")) or 4.0)
        attempts = int((yield from sys.getenv("DMTCP_GW_ATTEMPTS")) or 40)
        jitter = float((yield from sys.getenv("DMTCP_GW_JITTER")) or 0.25)
        recv_timeout = float((yield from sys.getenv("DMTCP_GW_RECV_TIMEOUT")) or 8.0)
        hostname = yield from sys.gethostname()
        gw = {
            "parent": (parent_host, parent_port),
            "hostname": hostname,
            "flush_s": flush_s,
            "supervise": supervise,
            #: reconnect schedule: the shared resilience policy, seeded
            #: by this gateway's hostname so sibling gateways orphaned by
            #: the same coordinator crash decorrelate their retries
            "policy": RetryPolicy(
                base_s=backoff, max_s=backoff_max, attempts=attempts, jitter=jitter
            ),
            #: supervised: cap any single uplink recv so a *silently*
            #: dead parent (no FIN) is detected -- same defence as the
            #: star member's member_recv_timeout_s
            "recv_timeout": recv_timeout if supervise else None,
            "tracer": tracer,
            "up_fd": None,
            "up_asm": None,
            #: monotonic uplink generation; a reconnect bumps it so the
            #: superseded uplink reader thread exits
            "up_gen": 0,
            #: child fd -> {"gateway": bool} (members and child gateways)
            "children": {},
            #: (host, vpid) -> {"msg": hello, "cfd": fd}: every member
            #: hello that passed through here, for replay after an
            #: upstream reconnect and for member-gone reports
            "hellos": {},
            #: per-barrier bookkeeping, all cleared on release or abort
            "waiting": {},  # name -> set of member fds awaiting release
            "relay_children": {},  # name -> set of child-gateway fds
            "pending_m": {},  # name -> member fds arrived, not yet flushed
            "flushed_m": {},  # name -> member fds whose arrival went up
            "pending_n": {},  # name -> aggregated child-gateway count
            "flush_scheduled": False,
        }
        up_fd = yield from sys.socket()
        yield from connect_retry(sys, up_fd, parent_host, parent_port)
        gw["up_fd"], gw["up_asm"] = up_fd, FrameAssembler()
        yield from _gw_up_send(sys, gw, P.msg(P.MSG_GW_HELLO))
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, port)
        yield from sys.listen(lfd, backlog=1024)
        yield from sys.thread_create(_gw_uplink, gw, gw["up_gen"])
        if supervise:
            yield from sys.thread_create(_gw_heartbeat, gw, heartbeat_s)
        while True:
            cfd = yield from sys.accept(lfd)
            gw["children"][cfd] = {"gateway": False}
            yield from sys.thread_create(_gw_downlink, gw, cfd)

    return gateway_main


def _gw_count(gw: dict, name: str, value: float = 1) -> None:
    tracer = gw.get("tracer")
    if tracer is not None:
        tracer.count(name, value)


def _gw_up_send(sys: Sys, gw: dict, message: dict):
    """Forward one frame upstream; a dead upstream is the uplink reader's
    problem (it reconnects or aborts the subtree), so drop quietly."""
    try:
        yield from send_frame(sys, gw["up_fd"], message, P.CTL_FRAME_BYTES)
    except SyscallError:
        pass


def _gw_clear_barriers(gw: dict) -> None:
    for key in ("waiting", "relay_children", "pending_m", "flushed_m", "pending_n"):
        gw[key].clear()


def _gw_downlink(sys: Sys, gw: dict, cfd: int):
    """Serve one child: aggregate its barrier verb, forward the rest."""
    asm = FrameAssembler()
    while True:
        result = yield from recv_frame(sys, cfd, asm)
        if result is None:
            yield from _gw_child_gone(sys, gw, cfd)
            return
        message = result[0]
        kind = message["kind"]
        if kind == P.MSG_BARRIER:
            name = message["name"]
            gw["waiting"].setdefault(name, set()).add(cfd)
            gw["pending_m"].setdefault(name, set()).add(cfd)
            yield from _gw_schedule_flush(sys, gw)
        elif kind == P.MSG_BARRIER_COUNT:
            name = message["name"]
            gw["pending_n"][name] = gw["pending_n"].get(name, 0) + message["n"]
            gw["relay_children"].setdefault(name, set()).add(cfd)
            yield from _gw_schedule_flush(sys, gw)
        elif kind == P.MSG_GW_HELLO:
            # subtree shape is private: remember, don't forward
            gw["children"][cfd]["gateway"] = True
        elif kind == P.MSG_HELLO or kind == P.MSG_REREGISTER:
            # re-registrations refresh the cached identity frame, so an
            # upstream replay after a *second* failover carries the
            # member's freshest generation and checkpoint lineage
            gw["hellos"][(message["host"], message["vpid"])] = {
                "msg": message,
                "cfd": cfd,
            }
            yield from _gw_up_send(sys, gw, message)
        elif kind == P.MSG_MEMBER_GONE:
            gw["hellos"].pop((message["host"], message["vpid"]), None)
            yield from _gw_up_send(sys, gw, message)
        elif kind == P.MSG_SUBTREE_GONE:
            for host, vpid in message.get("members", ()):
                gw["hellos"].pop((host, vpid), None)
            yield from _gw_up_send(sys, gw, message)
        elif kind == P.MSG_PING or kind == P.MSG_PONG:
            pass  # liveness is the send itself
        elif kind == P.MSG_GOODBYE:
            yield from _gw_child_gone(sys, gw, cfd, goodbye=True)
            return
        else:
            # ckpt-done, ckpt-failed, restart records, future verbs: the
            # tree is transparent to everything it does not aggregate
            yield from _gw_up_send(sys, gw, message)


def _gw_schedule_flush(sys: Sys, gw: dict):
    """Coalesce arrivals: one flush fires ``flush_s`` after the first
    pending arrival, sending a single counted delta per barrier."""
    if gw["flush_scheduled"]:
        return
    gw["flush_scheduled"] = True
    yield from sys.thread_create(_gw_flush_timer, gw)


def _gw_flush_timer(sys: Sys, gw: dict):
    yield from sys.sleep(gw["flush_s"])
    gw["flush_scheduled"] = False
    for name in sorted(set(gw["pending_m"]) | set(gw["pending_n"])):
        moved = gw["pending_m"].pop(name, set())
        n = len(moved) + gw["pending_n"].pop(name, 0)
        if not n:
            continue
        if moved:
            gw["flushed_m"].setdefault(name, set()).update(moved)
        _gw_count(gw, "coord.gw_flushes")
        yield from _gw_up_send(sys, gw, P.msg(P.MSG_BARRIER_COUNT, name=name, n=n))


def _gw_release(sys: Sys, gw: dict, name: str):
    """Fan one barrier release down to everyone who contributed."""
    members = sorted(gw["waiting"].pop(name, set()))
    relays = sorted(gw["relay_children"].pop(name, set()))
    gw["pending_m"].pop(name, None)
    gw["flushed_m"].pop(name, None)
    gw["pending_n"].pop(name, None)
    release = P.msg(P.MSG_BARRIER_RELEASE, name=name)
    for fd in members + relays:
        try:
            yield from send_frame(sys, fd, release, P.CTL_FRAME_BYTES)
        except SyscallError:
            pass  # the downlink reader will notice and report the death


def _gw_fan_down(sys: Sys, gw: dict, message: dict):
    """Broadcast a verb to every child (members and child gateways)."""
    for cfd in sorted(gw["children"]):
        try:
            yield from send_frame(sys, cfd, message, P.CTL_FRAME_BYTES)
        except SyscallError:
            yield from _gw_child_gone(sys, gw, cfd)


def _gw_child_gone(sys: Sys, gw: dict, cfd: int, goodbye: bool = False):
    """A child died (or said goodbye): report precisely what was lost.

    For a member child we know exactly which barrier arrivals were
    already counted upstream (``flushed_m``), so the root can decrement
    its counts; pending arrivals are simply dropped.  For a child
    *gateway* the aggregated counts below it cannot be reconciled, so
    the whole subtree is reported gone and the root aborts any in-flight
    round.
    """
    info = gw["children"].pop(cfd, None)
    if info is None:
        return  # already handled by the heartbeat or a failed send
    if info["gateway"]:
        members = sorted(k for k, v in gw["hellos"].items() if v["cfd"] == cfd)
        for key in members:
            gw["hellos"].pop(key, None)
        for fds in gw["relay_children"].values():
            fds.discard(cfd)
        _gw_count(gw, "coord.gw_subtrees_lost")
        yield from _gw_up_send(
            sys, gw, P.msg(P.MSG_SUBTREE_GONE, members=[list(k) for k in members])
        )
        return
    arrived = sorted(
        name for name, fds in gw["flushed_m"].items() if cfd in fds
    )
    for table in (gw["waiting"], gw["pending_m"], gw["flushed_m"]):
        for fds in table.values():
            fds.discard(cfd)
    key = next((k for k, v in gw["hellos"].items() if v["cfd"] == cfd), None)
    if key is None:
        return  # never said hello; the root does not know it exists
    gw["hellos"].pop(key, None)
    _gw_count(gw, "coord.gw_members_lost")
    yield from _gw_up_send(
        sys,
        gw,
        P.msg(
            P.MSG_MEMBER_GONE,
            host=key[0],
            vpid=key[1],
            arrived=arrived,
            goodbye=goodbye,
        ),
    )


def _gw_heartbeat(sys: Sys, gw: dict, interval: float):
    """Supervised mode: probe the children so silent subtree deaths
    surface here instead of all at the root."""
    while True:
        yield from sys.sleep(interval)
        for cfd in sorted(gw["children"]):
            try:
                yield from send_frame(sys, cfd, P.msg(P.MSG_PING), P.CTL_FRAME_BYTES)
            except SyscallError:
                yield from _gw_child_gone(sys, gw, cfd)


def _gw_uplink(sys: Sys, gw: dict, gen: int):
    """Fan coordinator verbs down; survive an upstream death."""
    while True:
        if gw["up_gen"] != gen:
            return  # superseded by a reconnect
        try:
            result = yield from recv_frame(
                sys, gw["up_fd"], gw["up_asm"], timeout=gw["recv_timeout"]
            )
        except SyscallError as err:
            if err.errno != "ETIMEDOUT":
                raise
            # quiet uplink: probe it -- a live parent accepts the bytes,
            # a silently-crashed one (no FIN) fails the send
            try:
                yield from send_frame(
                    sys, gw["up_fd"], P.msg(P.MSG_PING), P.CTL_FRAME_BYTES
                )
                continue
            except SyscallError:
                yield from _gw_upstream_lost(sys, gw, gen)
                return
        if result is None:
            yield from _gw_upstream_lost(sys, gw, gen)
            return
        message = result[0]
        kind = message["kind"]
        if kind == P.MSG_BARRIER_RELEASE:
            yield from _gw_release(sys, gw, message["name"])
        elif kind == P.MSG_CKPT_ABORT:
            # wake every waiter before clearing: nobody may be stranded
            yield from _gw_fan_down(sys, gw, message)
            _gw_clear_barriers(gw)
        elif kind == P.MSG_CHECKPOINT or kind == "die":
            yield from _gw_fan_down(sys, gw, message)
        elif kind == P.MSG_PING or kind == P.MSG_PONG:
            pass  # root probing us; the accept of the send is the answer
        # anything else is not for the subtree; ignore


def _gw_upstream_lost(sys: Sys, gw: dict, gen: int):
    """The parent (or the root) died.  Abort the subtree's waiters so no
    process hangs on a release that will never come, then -- in
    supervised mode -- reconnect with backoff and replay the cached
    hellos so the replacement coordinator relearns the membership."""
    if gw["up_gen"] != gen:
        return
    gw["up_gen"] += 1
    abort = P.msg(P.MSG_CKPT_ABORT, reason="gateway lost its coordinator link")
    yield from _gw_fan_down(sys, gw, abort)
    _gw_clear_barriers(gw)
    if not gw["supervise"]:
        yield from sys.exit(0)  # unsupervised: computation is over
    host, port = gw["parent"]
    for delay in gw["policy"].delays(gw["hostname"], "gw-reconnect"):
        yield from sys.sleep(delay)
        fd = yield from sys.socket()
        try:
            yield from sys.connect(fd, host, port)
        except SyscallError:
            try:
                yield from sys.close(fd)
            except SyscallError:
                pass
            continue
        gw["up_fd"], gw["up_asm"] = fd, FrameAssembler()
        yield from _gw_up_send(sys, gw, P.msg(P.MSG_GW_HELLO))
        # replay the cached identity frames as re-registrations: the
        # replacement coordinator rebuilds the subtree's membership
        # (generation + lineage included) without the members noticing
        for _key, entry in sorted(gw["hellos"].items()):
            yield from _gw_up_send(
                sys, gw, dict(entry["msg"], kind=P.MSG_REREGISTER)
            )
        _gw_count(gw, "coord.gw_reconnects")
        yield from sys.thread_create(_gw_uplink, gw, gw["up_gen"])
        return
    yield from sys.exit(1)  # upstream never came back
