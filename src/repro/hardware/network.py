"""Cluster interconnect: a non-blocking switch with per-NIC bandwidth.

Gigabit Ethernet is modelled as a full-bisection switch: a transfer is
constrained only by the sender's TX queue and the receiver's RX queue
(each a fair-share :class:`BandwidthResource`), plus propagation latency
and a small per-message software overhead.  Loopback transfers bypass the
NIC entirely and move at memory bandwidth, as they do on a real host --
this matters because DMTCP treats loopback sockets like any other socket
(Section 4.4) while their drain cost is near zero.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import NetworkSpec
from repro.sim.engine import Engine
from repro.sim.tasks import Future

from repro.hardware.resources import BandwidthResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import Node


class Network:
    """Connects :class:`~repro.hardware.node.Node` objects."""

    def __init__(self, engine: Engine, spec: NetworkSpec):
        self.engine = engine
        self.spec = spec
        self._nodes: dict[str, "Node"] = {}
        #: Total payload bytes moved across the fabric; test hook.
        self.bytes_transferred = 0.0

    def attach(self, node: "Node") -> None:
        """Plug a node into the switch."""
        if node.hostname in self._nodes:
            raise ValueError(f"duplicate hostname {node.hostname!r}")
        self._nodes[node.hostname] = node

    def node(self, hostname: str) -> "Node":
        """Look a node up by hostname."""
        return self._nodes[hostname]

    @property
    def hostnames(self) -> list[str]:
        """All attached hostnames."""
        return list(self._nodes)

    @staticmethod
    def engine_memory_bps(node: "Node") -> float:
        """The node's memcpy bandwidth (loopback fast path)."""
        return node.spec.cpu.memory_bps

    def transfer(self, src: "Node", dst: "Node", nbytes: float) -> Future:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Resolves when the last byte has arrived at ``dst``.  The bytes
        occupy the sender TX and receiver RX queues concurrently; the
        transfer completes when the slower side finishes.
        """
        done = Future("net:transfer")
        self.bytes_transferred += nbytes
        if src is dst:
            # loopback: memory-speed copy, no NIC, no wire latency
            if nbytes <= self.spec.small_transfer_bytes:
                self.engine.call_after(
                    nbytes / self.engine_memory_bps(src), done.resolve, None
                )
            else:
                src.loopback.submit(nbytes).add_done(lambda: done.resolve(None))
            return done
        if nbytes <= self.spec.small_transfer_bytes:
            # control-frame fast path: fixed latency + serialization time,
            # no shared-queue occupancy (see NetworkSpec.small_transfer_bytes)
            delay = (
                self.spec.latency_s
                + self.spec.per_message_s
                + nbytes / self.spec.bandwidth_bps
            )
            self.engine.call_after(delay, done.resolve, None)
            return done
        tx = src.nic_tx.submit(nbytes)
        rx = dst.nic_rx.submit(nbytes)
        fixed = self.spec.latency_s + self.spec.per_message_s
        outstanding = {"n": 2}

        def one_side_done() -> None:
            outstanding["n"] -= 1
            if outstanding["n"] == 0:
                self.engine.call_after(fixed, done.resolve, None)

        tx.add_done(one_side_done)
        rx.add_done(one_side_done)
        return done
