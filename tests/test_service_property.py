"""Property test: eviction recovery is bounded for *any* seeded workload.

For random job-arrival seeds and random eviction schedules, every
preempted tenant must restart from its newest valid image set and lose
at most ``checkpoint interval + barrier timeout`` of work (the plan
selection reuses the AutoRestartSupervisor validity walk inside the
scheduler's eviction path).  Isolation must also hold: no tenant's
checkpoint ever fails because of another tenant's traffic.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.service import run_service_point

INTERVAL_S = 1.0
DURATION_S = 4.0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    # wave times land after the first checkpoint epoch and leave room
    # for the last recovery before the horizon
    eviction_times=st.lists(
        st.floats(min_value=1.2, max_value=2.8, allow_nan=False),
        min_size=1,
        max_size=2,
    ),
)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_evicted_tenants_recover_within_bound(seed, eviction_times):
    report = _run(seed, eviction_times)
    # the newest-valid-plan walk recovered every victim...
    assert report["eviction_recoveries"] > 0
    # ...with lost work under interval + barrier timeout, always
    assert report["lost_work_violations"] == 0, report["lost_work_s"]
    assert report["lost_work_max_s"] <= report["lost_work_bound_s"]
    # and nobody else's checkpoint was harmed by the disturbance
    assert report["cross_tenant_failures"] == 0


def _run(seed, eviction_times):
    from repro.harness.service import service_spec
    from repro.cluster import build_cluster
    from repro.service import ClusterScheduler, CoordinatorHub, TenantRegistry

    tenants, ranks, spare_hosts = 3, 2, 2
    world = build_cluster(
        n_nodes=1 + tenants + spare_hosts, spec=service_spec(), seed=seed
    )
    hub = CoordinatorHub(world, batched=True)
    registry = TenantRegistry(world, hub)
    scheduler = ClusterScheduler(
        world, registry, hub,
        worker_hosts=world.machine.hostnames[1:],
        seed=seed, interval_s=INTERVAL_S,
    )
    scheduler.generate_arrivals(
        tenants,
        mean_interarrival_s=0.02,
        slots_choices=(ranks,),
        slices=int(2 * DURATION_S / 0.05) + 100,  # outlast the horizon
    )
    for at_t in eviction_times:
        scheduler.schedule_eviction(at_t)
    scheduler.start()
    world.engine.run(until=DURATION_S)
    scheduler.stop()
    # every evicted job ended the run recovered (or at worst mid-recovery
    # on its way back: requeued/restarting), never stuck or lost
    for job in scheduler.jobs.values():
        if job.evictions > 0:
            assert job.state in ("running", "starting", "queued", "done"), (
                job.name, job.state
            )
    return scheduler.report()
