"""Trace exporters: JSON Lines and Chrome ``trace_event`` format.

The JSONL format is the canonical machine-readable dump: one event per
line, keys sorted, floats rendered by ``json`` -- byte-identical across
runs with the same seed.  The Chrome format is loadable in
``chrome://tracing`` and https://ui.perfetto.dev: tracks are mapped onto
(pid, tid) pairs by splitting the track name on its first ``/`` (node
first, process/thread second), with metadata events naming both.
"""

from __future__ import annotations

import json
from typing import TextIO, Union

from repro.obs.tracer import Tracer

__all__ = ["jsonl_lines", "write_jsonl", "chrome_trace", "write_chrome"]

#: Virtual seconds -> trace_event microseconds.
_US = 1_000_000


def jsonl_lines(tracer: Tracer) -> list[str]:
    """Render every event (and a final counter record) as JSONL lines."""
    lines = []
    for ev in tracer.events:
        record: dict = {"ph": ev.ph, "ts": ev.ts, "track": ev.track, "name": ev.name}
        if ev.cat is not None:
            record["cat"] = ev.cat
        if ev.args:
            record["args"] = ev.args
        if ev.tenant:
            record["tenant"] = ev.tenant
        lines.append(json.dumps(record, sort_keys=True))
    if tracer.counters:
        counters = {k: tracer.counters[k] for k in sorted(tracer.counters)}
        lines.append(json.dumps({"ph": "counters", "values": counters}, sort_keys=True))
    for tenant in sorted(tracer.tenant_counters):
        per = tracer.tenant_counters[tenant]
        values = {k: per[k] for k in sorted(per)}
        lines.append(
            json.dumps(
                {"ph": "counters", "tenant": tenant, "values": values}, sort_keys=True
            )
        )
    return lines


def write_jsonl(tracer: Tracer, dest: Union[str, TextIO]) -> None:
    """Write the JSONL dump to a path or open text file."""
    text = "\n".join(jsonl_lines(tracer)) + "\n"
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            fh.write(text)
    else:
        dest.write(text)


def _track_ids(tracer: Tracer) -> dict[str, tuple[int, int]]:
    """Assign stable (pid, tid) pairs to track names, grouped by node."""
    pids: dict[str, int] = {}
    tids: dict[str, tuple[int, int]] = {}
    next_tid: dict[int, int] = {}
    for ev in tracer.events:
        if ev.track in tids:
            continue
        node, _, rest = ev.track.partition("/")
        pid = pids.setdefault(node, len(pids) + 1)
        tid = next_tid.get(pid, 0) + 1
        next_tid[pid] = tid
        tids[ev.track] = (pid, tid)
    return tids


def chrome_trace(tracer: Tracer) -> dict:
    """Build the ``trace_event`` JSON object for this tracer."""
    tids = _track_ids(tracer)
    events: list[dict] = []
    # metadata: name the processes (nodes) and threads (tracks)
    seen_pids: set[int] = set()
    for track, (pid, tid) in sorted(tids.items(), key=lambda kv: kv[1]):
        node, _, rest = track.partition("/")
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append(
                {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                 "args": {"name": node}}
            )
        events.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
             "args": {"name": rest or track}}
        )
    for ev in tracer.events:
        pid, tid = tids[ev.track]
        record: dict = {
            "ph": ev.ph,
            "ts": round(ev.ts * _US, 3),
            "pid": pid,
            "tid": tid,
            "name": ev.name,
            "cat": ev.cat or "repro",
        }
        if ev.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        if ev.tenant:
            record["args"] = {**(ev.args or {}), "tenant": ev.tenant}
        elif ev.args:
            record["args"] = ev.args
        events.append(record)
    # final counter values, one "C" sample each, at the trace's end time
    end_ts = round((tracer.events[-1].ts if tracer.events else 0.0) * _US, 3)
    for name in sorted(tracer.counters):
        events.append(
            {"ph": "C", "ts": end_ts, "pid": 0, "tid": 0, "name": name,
             "args": {"value": tracer.counters[name]}}
        )
    for tenant in sorted(tracer.tenant_counters):
        per = tracer.tenant_counters[tenant]
        for name in sorted(per):
            events.append(
                {"ph": "C", "ts": end_ts, "pid": 0, "tid": 0,
                 "name": f"{name}@{tenant}", "args": {"value": per[name]}}
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(tracer: Tracer, path: str) -> None:
    """Write the Chrome trace_event file (open in chrome://tracing)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, sort_keys=True)
        fh.write("\n")
