"""The virtual-time tracer: spans, instant events, and counters.

Every layer of the reproduction (sim engine, kernel world, coordinator,
MTCP, restart) reports into one :class:`Tracer` owned by the
:class:`~repro.kernel.world.World`.  Timestamps are *virtual* seconds
read from the engine clock, so traces are deterministic: the same seed
replays the same event interleaving and therefore the same trace, byte
for byte.

Design rules:

* **Spans always measure.**  ``begin``/``end`` return virtual timestamps
  and durations whether or not tracing is enabled, and the Table-1
  harness derives its stage numbers from exactly these return values --
  benchmarks and traces can never disagree, because they are the same
  measurement.
* **Recording is zero-cost when disabled.**  With ``enabled=False`` no
  event objects are allocated, no counters accumulate, and memory does
  not grow; the only residual work is a clock read and a span-stack
  push/pop (needed so durations stay correct).
* **Spans are strictly nested per track.**  A *track* is one timeline
  (one process, one barrier, one restarter).  ``end`` must close the
  innermost open span of its track; mismatches raise :class:`TraceError`
  immediately instead of producing a silently corrupt trace.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import TraceError

__all__ = ["Tracer", "TraceEvent", "proc_track"]

#: Event phases, mirroring the Chrome trace_event vocabulary.
PH_BEGIN = "B"
PH_END = "E"
PH_INSTANT = "i"


class TraceEvent:
    """One recorded trace event (span edge or instant)."""

    __slots__ = ("ph", "ts", "track", "name", "cat", "args", "tenant")

    def __init__(
        self,
        ph: str,
        ts: float,
        track: str,
        name: str,
        cat: Optional[str] = None,
        args: Optional[dict] = None,
        tenant: Optional[str] = None,
    ):
        self.ph = ph
        self.ts = ts
        self.track = track
        self.name = name
        self.cat = cat
        self.args = args
        self.tenant = tenant

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent {self.ph} t={self.ts:.9f} {self.track} {self.name}>"


def proc_track(hostname: str, program: str, vpid: int) -> str:
    """Canonical track name for one simulated process."""
    return f"{hostname}/{program}[{vpid}]"


class Tracer:
    """Low-overhead span/instant/counter recorder on a virtual clock.

    ``clock`` is any zero-argument callable returning the current virtual
    time; the world wires it to ``engine.now``.
    """

    __slots__ = (
        "clock", "enabled", "events", "counters", "tenant_counters",
        "_stacks", "_watchers", "_span_hooks",
    )

    def __init__(self, clock: Optional[Callable[[], float]] = None, enabled: bool = False):
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.enabled = enabled
        #: Recorded events, in execution order (deterministic per seed).
        self.events: list[TraceEvent] = []
        #: Cumulative counters, name -> value.
        self.counters: dict[str, float] = {}
        #: Per-tenant counter breakdown, tenant -> {name -> value}.  Only
        #: populated when callers pass ``tenant=`` (the multi-tenant
        #: service); single-tenant runs never touch it.
        self.tenant_counters: dict[str, dict[str, float]] = {}
        #: Per-track stacks of open spans: track -> [(name, begin_ts), ...]
        self._stacks: dict[str, list[tuple[str, float]]] = {}
        #: enable/disable listeners -- hot loops (engine step, scheduler
        #: trampoline) register here so they can rebind their cached
        #: "tracer-or-None" slot instead of re-testing ``enabled`` per event.
        self._watchers: list[Callable[["Tracer"], None]] = []
        #: Span-edge hooks ``fn(ph, track, name, ts)`` fired on every
        #: begin/end *whether or not recording is enabled* -- spans always
        #: measure, so hooks always see edges.  The fault injector uses
        #: these to target "during barrier X" without the tracer on.  The
        #: empty-list truthiness test keeps the no-hooks path free.
        self._span_hooks: list[Callable[[str, str, str, float], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def add_watcher(self, fn: Callable[["Tracer"], None]) -> None:
        """Call ``fn(self)`` now and after every enable()/disable()."""
        if fn not in self._watchers:
            self._watchers.append(fn)
        fn(self)

    def _notify(self) -> None:
        for fn in self._watchers:
            fn(self)

    def enable(self) -> None:
        """Start recording events and counters."""
        self.enabled = True
        self._notify()

    def disable(self) -> None:
        """Stop recording; open spans keep measuring."""
        self.enabled = False
        self._notify()

    def reset(self) -> None:
        """Drop all recorded events, counters, and open spans."""
        self.events.clear()
        self.counters.clear()
        self.tenant_counters.clear()
        self._stacks.clear()

    # ------------------------------------------------------------------
    # Span hooks (fault injection, phase-targeted instrumentation)
    # ------------------------------------------------------------------
    def add_span_hook(self, fn: Callable[[str, str, str, float], None]) -> None:
        """Fire ``fn(ph, track, name, ts)`` on every span begin ("B") and
        end ("E"), independent of ``enabled``."""
        if fn not in self._span_hooks:
            self._span_hooks.append(fn)

    def remove_span_hook(self, fn: Callable[[str, str, str, float], None]) -> None:
        """Detach a previously added span hook (no-op if absent)."""
        try:
            self._span_hooks.remove(fn)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin(
        self, track: str, name: str, cat: Optional[str] = None,
        tenant: Optional[str] = None, **args: Any,
    ) -> float:
        """Open a span on ``track``; returns its begin timestamp."""
        now = self.clock()
        stack = self._stacks.get(track)
        if stack is None:
            stack = self._stacks[track] = []
        stack.append((name, now))
        if self.enabled:
            self.events.append(
                TraceEvent(PH_BEGIN, now, track, name, cat, args or None, tenant)
            )
        if self._span_hooks:
            for fn in list(self._span_hooks):
                fn(PH_BEGIN, track, name, now)
        return now

    def end(
        self, track: str, name: Optional[str] = None, cat: Optional[str] = None,
        tenant: Optional[str] = None, **args: Any,
    ) -> float:
        """Close the innermost open span on ``track``; returns its duration.

        If ``name`` is given it must match the open span (balance check).
        """
        now = self.clock()
        stack = self._stacks.get(track)
        if not stack:
            raise TraceError(f"end({name!r}) on track {track!r} with no open span")
        open_name, begin_ts = stack.pop()
        if name is not None and name != open_name:
            stack.append((open_name, begin_ts))
            raise TraceError(
                f"end({name!r}) on track {track!r} does not match open span {open_name!r}"
            )
        if self.enabled:
            self.events.append(
                TraceEvent(PH_END, now, track, open_name, cat, args or None, tenant)
            )
        if self._span_hooks:
            for fn in list(self._span_hooks):
                fn(PH_END, track, open_name, now)
        return now - begin_ts

    def instant(
        self, track: str, name: str, cat: Optional[str] = None,
        tenant: Optional[str] = None, **args: Any,
    ) -> float:
        """Record a point-in-time event; returns its timestamp."""
        now = self.clock()
        if self.enabled:
            self.events.append(
                TraceEvent(PH_INSTANT, now, track, name, cat, args or None, tenant)
            )
        return now

    def open_spans(self, track: Optional[str] = None) -> int:
        """Number of currently open spans (on one track, or overall)."""
        if track is not None:
            return len(self._stacks.get(track, ()))
        return sum(len(stack) for stack in self._stacks.values())

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, tenant: Optional[str] = None) -> None:
        """Add ``value`` to counter ``name`` (no-op when disabled)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + value
            if tenant:
                per = self.tenant_counters.setdefault(tenant, {})
                per[name] = per.get(name, 0) + value

    def count_max(self, name: str, value: float, tenant: Optional[str] = None) -> None:
        """Track the maximum of ``value`` under ``name`` (no-op when disabled)."""
        if self.enabled:
            current = self.counters.get(name)
            if current is None or value > current:
                self.counters[name] = value
            if tenant:
                per = self.tenant_counters.setdefault(tenant, {})
                current = per.get(name)
                if current is None or value > current:
                    per[name] = value

    def snapshot(self) -> dict[str, float]:
        """A copy of all counters, for tests and benchmarks to assert on."""
        return dict(self.counters)

    # ------------------------------------------------------------------
    # Queries and export
    # ------------------------------------------------------------------
    def spans(self, cat: Optional[str] = None, track: Optional[str] = None) -> list[dict]:
        """Completed spans as dicts with begin/end/duration.

        Pairs each ``E`` event with the matching ``B`` on its track,
        honouring nesting.  Optionally filtered by category and track.
        """
        open_by_track: dict[str, list[TraceEvent]] = {}
        out: list[dict] = []
        for ev in self.events:
            if ev.ph == PH_BEGIN:
                open_by_track.setdefault(ev.track, []).append(ev)
            elif ev.ph == PH_END:
                stack = open_by_track.get(ev.track)
                if not stack:
                    continue  # span began before recording was enabled
                b = stack.pop()
                out.append(
                    {
                        "track": ev.track,
                        "name": b.name,
                        "cat": b.cat or ev.cat,
                        "begin": b.ts,
                        "end": ev.ts,
                        "duration": ev.ts - b.ts,
                        "args": {**(b.args or {}), **(ev.args or {})} or None,
                    }
                )
        if cat is not None:
            out = [s for s in out if s["cat"] == cat]
        if track is not None:
            out = [s for s in out if s["track"] == track]
        return out

    def write_jsonl(self, path: str) -> None:
        """Export all events as JSON Lines (see repro.obs.export)."""
        from repro.obs.export import write_jsonl

        write_jsonl(self, path)

    def write_chrome(self, path: str) -> None:
        """Export as a Chrome trace_event file (see repro.obs.export)."""
        from repro.obs.export import write_chrome

        write_chrome(self, path)
