"""Comparator checkpointing systems from the paper's related work.

* :mod:`repro.baselines.dejavu` -- a DejaVu-style transparent user-level
  checkpointer (Ruscio et al.): message logging plus page-protection
  write tracking, the "more invasive approach" Section 2 contrasts with
  DMTCP's approach of paying nothing between checkpoints;
* :mod:`repro.baselines.blcr` -- a BLCR-style kernel-module single-node
  checkpointer, which by itself "can only checkpoint processes on a
  single machine" -- the bench demonstrates exactly that failure mode on
  a distributed job.
"""

from repro.baselines.blcr import BlcrCheckpointer
from repro.baselines.dejavu import DEJAVU_ENV, DejavuComputation

__all__ = ["BlcrCheckpointer", "DEJAVU_ENV", "DejavuComputation"]
