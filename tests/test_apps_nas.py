"""Workload tests: NAS minis compute correctly, run under both MPI
stacks, and keep their verification invariants across checkpoint/restart."""

import pytest

from repro.apps import register_all_apps
from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation


@pytest.fixture()
def world():
    w = build_cluster(n_nodes=4, seed=31)
    register_all_apps(w)
    return w


def no_failures(world):
    assert not world.scheduler.failures, [
        (t.name, e) for t, e in world.scheduler.failures
    ]


def run_job(world, program, n, iters=3, host="node00"):
    proc = world.spawn_process(
        host,
        "orterun",
        ["orterun", "-n", str(n), program, str(iters)],
        {"NAS_SCALE": "0.01"},
    )
    world.engine.run_until(lambda: not proc.alive)
    assert proc.exit_code == 0, f"{program} failed"
    return proc


@pytest.mark.parametrize(
    "program,n",
    [
        ("nas_ep", 4),
        ("nas_cg", 4),
        ("nas_mg", 4),
        ("nas_is", 4),
        ("nas_lu", 4),
        ("nas_sp", 4),
        ("nas_bt", 4),
    ],
)
def test_nas_benchmarks_verify(world, program, n):
    """Each mini-benchmark runs its internal verification (assertions in
    the kernels) to completion."""
    run_job(world, program, n)
    no_failures(world)


def test_nas_ep_deterministic_across_runs():
    """Same seed, same cluster: identical traffic and timing."""
    times = []
    for _ in range(2):
        w = build_cluster(n_nodes=2, seed=77)
        register_all_apps(w)
        proc = w.spawn_process(
            "node00", "orterun", ["orterun", "-n", "4", "nas_ep", "2"], {"NAS_SCALE": "0.01"}
        )
        w.engine.run_until(lambda: not proc.alive)
        times.append(w.engine.now)
    assert times[0] == times[1]


def test_nas_sp_requires_square_rank_count(world):
    proc = world.spawn_process(
        "node00", "orterun", ["orterun", "-n", "3", "nas_sp", "1"], {"NAS_SCALE": "0.01"}
    )
    world.engine.run(until=200.0)
    # ranks die with ValueError -> recorded as failures
    assert world.scheduler.failures
    world.scheduler.failures.clear()


def test_nas_lu_survives_checkpoint_restart_mid_pipeline(world):
    """Checkpoint+kill+restart in the middle of LU's wavefront pipeline;
    the verification assertions inside the kernel must still pass."""
    comp = DmtcpComputation(world)
    job = comp.launch(
        "node00",
        "orterun",
        ["orterun", "-n", "4", "nas_lu", "600"],
        env={"NAS_SCALE": "0.01"},
    )
    world.engine.run(until=1.0)
    assert job.alive
    comp.checkpoint(kill=True)
    comp.restart()
    world.engine.run(until=world.engine.now + 200.0)
    no_failures(world)


def test_pargeant4_completes_and_merges(world):
    proc = world.spawn_process(
        "node00", "orterun", ["orterun", "-n", "4", "pargeant4", "12", "0.01"]
    )
    world.engine.run_until(lambda: not proc.alive)
    assert proc.exit_code == 0
    no_failures(world)


def test_ipython_demo_runs_and_checkpoints(world):
    comp = DmtcpComputation(world)
    comp.launch("node00", "ipython_demo", ["ipython_demo", "4"])
    world.engine.run(until=2.0)
    outcome = comp.checkpoint()
    # launcher + controller + 4 engines
    assert len(outcome.records) == 6
    world.engine.run(until=world.engine.now + 2.0)
    no_failures(world)


def test_memhog_allocates_requested_total(world):
    proc = world.spawn_process(
        "node00",
        "orterun",
        ["orterun", "-n", "4", "memhog"],
        {"MEMHOG_MB": "16"},
    )
    world.engine.run(until=5.0)
    ranks = [p for p in world.live_processes() if p.program == "memhog"]
    assert len(ranks) == 4
    for r in ranks:
        assert r.address_space.total_bytes >= 16 * 2**20
    no_failures(world)


def test_runcms_footprint_and_library_count(world):
    from repro.kernel.procfs import count_libraries

    proc = world.spawn_process("node00", "runcms", ["runcms", "2.0"])
    world.engine.run(until=10.0)
    assert proc.env.get("RUNCMS_READY") == "1"
    assert count_libraries(proc) == 540
    assert proc.address_space.total_bytes > 650 * 2**20
    no_failures(world)


def test_shell_app_profiles_all_registered(world):
    from repro.apps.profiles import APP_PROFILES
    from repro.apps.shell_apps import program_for

    assert len(APP_PROFILES) == 21  # the paper's "over 20 applications"
    for name in APP_PROFILES:
        assert program_for(name) in world.programs


def test_shell_app_with_helpers_checkpoints(world):
    from repro.apps.shell_apps import program_for

    comp = DmtcpComputation(world)
    comp.launch("node00", program_for("tightvnc+twm"))
    world.engine.run(until=3.0)
    outcome = comp.checkpoint()
    assert len(outcome.records) == 3  # Xvnc + twm + client
    no_failures(world)


def test_shell_app_restart_keeps_interactive_loop(world):
    from repro.apps.shell_apps import program_for

    comp = DmtcpComputation(world)
    proc = comp.launch("node00", program_for("python"))
    world.engine.run(until=2.0)
    comp.checkpoint(kill=True)
    comp.restart(placement={"node00": "node02"})
    world.engine.run(until=world.engine.now + 5.0)
    restored = [
        p for p in world.live_processes() if p.program == program_for("python")
    ]
    assert len(restored) == 1
    assert restored[0].node.hostname == "node02"
    no_failures(world)


def test_chombo_completes(world):
    proc = world.spawn_process(
        "node00", "orterun", ["orterun", "-n", "4", "chombo", "5"]
    )
    world.engine.run_until(lambda: not proc.alive)
    assert proc.exit_code == 0
    no_failures(world)
