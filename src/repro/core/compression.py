"""The gzip pipeline: real compression ratios, calibrated-era throughput.

DMTCP pipes every image through gzip by default.  Two quantities matter
for reproducing the paper's numbers:

* the **ratio** -- measured here by really running zlib over a
  representative sample of each content profile (so NAS/IS's mostly-zero
  buckets, runCMS's text-heavy heap, and MPI's incompressible random data
  each get their honest ratio);
* the **throughput** -- calibrated to 2008 Xeon clocks (zlib on today's
  hardware is several times faster), scaled per profile by a
  deterministic speed model: gzip races through low-entropy input because
  its match finder spends almost no time in literals.  We derive the
  speed factor from the measured ratio rather than wall-clock timing so
  simulations stay bit-reproducible.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.config import CpuSpec
from repro.kernel.memory import PROFILES, ContentProfile

#: Sample size for ratio measurement.  Large enough for stable statistics,
#: small enough to keep test startup cheap.
SAMPLE_BYTES = 256 * 1024

#: zlib level 6 == gzip's default.
ZLIB_LEVEL = 6


@lru_cache(maxsize=None)
def measured_ratio(profile_name: str) -> float:
    """compressed/original ratio, measured with real zlib on a sample."""
    profile = PROFILES[profile_name]
    rng = np.random.default_rng(0xC0FFEE)  # fixed: ratios are constants
    sample = profile.sample(SAMPLE_BYTES, rng)
    compressed = zlib.compress(sample, ZLIB_LEVEL)
    return len(compressed) / len(sample)


@lru_cache(maxsize=None)
def speed_factor(profile_name: str) -> float:
    """How much faster than worst-case gzip runs on this content.

    Derived deterministically from the measured ratio: highly
    compressible input means long matches and little literal coding.
    Calibrated so random data is 1x and all-zero data is ~8x -- the
    empirically observed spread for gzip.
    """
    ratio = min(measured_ratio(profile_name), 1.0)
    return 1.0 / (0.12 + 0.88 * ratio)


@dataclass(frozen=True)
class CompressionEstimate:
    """Cost model output for one image's worth of regions."""

    input_bytes: int
    output_bytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def ratio(self) -> float:
        """output/input byte ratio (1.0 when compression is off)."""
        return self.output_bytes / self.input_bytes if self.input_bytes else 1.0


def estimate(
    regions: list[tuple[int, str]],
    cpu: CpuSpec,
    enabled: bool = True,
    nworkers: int = 1,
) -> CompressionEstimate:
    """Estimate compression of ``[(size_bytes, profile_name), ...]``.

    With ``enabled=False`` the output equals the input and only a memcpy
    cost is charged (MTCP still streams the image through a buffer).

    ``nworkers > 1`` models parallel gzip: each region is an independent
    stream, assigned to the least-loaded of ``nworkers`` cores
    (deterministic LPT schedule), and the charged time is the critical
    path rather than the serial sum.  Decompression parallelizes the
    same way, so the serial ``gunzip_speedup`` ratio carries over.  The
    memcpy path is memory-bandwidth-bound and does not benefit.
    """
    total_in = sum(size for size, _ in regions)
    if not enabled:
        memcpy = total_in / cpu.memory_bps
        return CompressionEstimate(total_in, total_in, memcpy, memcpy)
    total_out = 0.0
    c_seconds = 0.0
    stream_seconds = []
    for size, profile_name in regions:
        total_out += size * measured_ratio(profile_name)
        t = size / (cpu.gzip_bps * speed_factor(profile_name))
        c_seconds += t
        stream_seconds.append(t)
    if nworkers > 1 and len(stream_seconds) > 1:
        c_seconds = _critical_path(stream_seconds, nworkers)
    d_seconds = c_seconds / cpu.gunzip_speedup
    return CompressionEstimate(total_in, int(total_out), c_seconds, d_seconds)


def _critical_path(stream_seconds: list[float], nworkers: int) -> float:
    """Makespan of an LPT schedule of the streams over ``nworkers`` cores."""
    loads = [0.0] * min(nworkers, len(stream_seconds))
    for t in sorted(stream_seconds, reverse=True):
        i = min(range(len(loads)), key=loads.__getitem__)
        loads[i] += t
    return max(loads)


class EstimateCache:
    """Memo for :func:`estimate`, keyed on the frozen region multiset.

    The checkpoint hot path computes the same estimate three times per
    checkpoint per process (build, write, restore) over an unchanged
    region table; memoizing it is a pure wall-clock win.  Keys are the
    *multiset* of ``(size, profile)`` pairs (order cannot change the
    physics) plus the cpu spec, the enabled flag, and the worker count.
    Bounded LRU so long sweeps over many worlds cannot grow it forever.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict = OrderedDict()

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def get(
        self,
        regions: list[tuple[int, str]],
        cpu: CpuSpec,
        enabled: bool = True,
        nworkers: int = 1,
        content_key=None,
    ) -> CompressionEstimate:
        """``content_key`` keys the entry by content hash instead of the
        region multiset: with the chunk store enabled, rank 0's estimate
        of a shared chunk is a first-checkpoint cache hit for every other
        rank (the store guarantees equal keys mean equal bytes)."""
        if content_key is not None:
            key = (content_key, cpu, enabled, nworkers)
        else:
            key = (tuple(sorted(regions)), cpu, enabled, nworkers)
        est = self._store.get(key)
        if est is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return est
        self.misses += 1
        # compute over the caller's region order: for nworkers == 1 the
        # serial sum is then bit-identical to an uncached call
        est = estimate(regions, cpu, enabled=enabled, nworkers=nworkers)
        self._store[key] = est
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return est


#: Process-wide memo shared by every world in this interpreter.
ESTIMATE_CACHE = EstimateCache()


def estimate_cached(
    regions: list[tuple[int, str]],
    cpu: CpuSpec,
    enabled: bool = True,
    nworkers: int = 1,
    content_key=None,
) -> CompressionEstimate:
    """Memoized :func:`estimate` (see :class:`EstimateCache`)."""
    return ESTIMATE_CACHE.get(
        regions, cpu, enabled=enabled, nworkers=nworkers, content_key=content_key
    )


def profile_report() -> dict[str, dict[str, float]]:
    """Measured ratio and derived speed factor per profile (for docs)."""
    return {
        name: {"ratio": measured_ratio(name), "speed_factor": speed_factor(name)}
        for name in PROFILES
    }


__all__ = [
    "ESTIMATE_CACHE",
    "CompressionEstimate",
    "ContentProfile",
    "EstimateCache",
    "estimate",
    "estimate_cached",
    "measured_ratio",
    "profile_report",
    "speed_factor",
]
