"""The runCMS case study (Section 5.1): a 680 MB image with 540 dynamic
libraries that checkpoints in 25.2 s, restarts in 18.4 s, and compresses
to 225 MB -- the "undump" use case."""

from repro.core.launch import DmtcpComputation
from repro.harness.experiment import MB, build_desktop
from repro.harness.report import table
from repro.kernel.procfs import count_libraries

from benchmarks._util import run_timed, save_and_print, save_json


def _run():
    world = build_desktop(seed=0)
    comp = DmtcpComputation(world)
    proc = comp.launch("node00", "runcms", ["runcms", "20.0"])
    world.engine.run_until(lambda: proc.env.get("RUNCMS_READY") == "1")
    world.engine.run(until=world.engine.now + 1.0)
    libs = count_libraries(proc)
    resident_mb = proc.address_space.total_bytes / MB
    ckpt = comp.checkpoint()
    kill = comp.checkpoint(kill=True)
    restart = comp.restart(plan=kill.plan)
    return {
        "libs": libs,
        "resident_mb": resident_mb,
        "ckpt_s": ckpt.duration,
        "restart_s": restart.duration,
        "stored_mb": ckpt.total_stored_bytes / MB,
        "image_mb": ckpt.total_image_bytes / MB,
    }


def test_runcms_case_study(benchmark):
    r, wall = run_timed(benchmark, _run)
    text = table(
        ["metric", "measured", "paper"],
        [
            ("dynamic libraries", r["libs"], 540),
            ("resident MB", r["resident_mb"], 680),
            ("checkpoint s", r["ckpt_s"], 25.2),
            ("restart s", r["restart_s"], 18.4),
            ("image MB (gzipped)", r["stored_mb"], 225),
        ],
        title="runCMS case study (Section 5.1)",
    )
    save_and_print("runcms", text)
    save_json("runcms", {**r, "wall_clock_s": wall})

    assert r["libs"] == 540
    assert 600 < r["resident_mb"] < 800
    # image compresses to roughly a third, like the paper's 680 -> 225
    assert 150 < r["stored_mb"] < 320
    # tens of seconds to checkpoint; restart faster than checkpoint
    assert 8 < r["ckpt_s"] < 60
    assert r["restart_s"] < r["ckpt_s"]
