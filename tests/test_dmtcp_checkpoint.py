"""Integration tests: the 7-stage checkpoint protocol, single and multi
process, with timing-stage sanity checks."""

import pytest

from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation
from repro.kernel.syscalls import connect_retry


@pytest.fixture()
def world():
    return build_cluster(n_nodes=4, seed=11)


def no_failures(world):
    assert not world.scheduler.failures, [
        (t.name, e) for t, e in world.scheduler.failures
    ]


def counter_program(log):
    def main(sys, argv):
        for i in range(200):
            yield from sys.sleep(0.05)
            log.append(i)

    return main


def test_single_process_checkpoint_and_continue(world):
    log = []
    world.register_program("counter", counter_program(log))
    comp = DmtcpComputation(world)
    comp.launch("node00", "counter")
    world.engine.run(until=1.0)
    assert log, "app did not start"
    outcome = comp.checkpoint()
    assert outcome.ckpt_id == 1
    assert len(outcome.records) == 1
    rec = outcome.records[0]
    # all five checkpoint stages ran
    for stage in ("suspend", "elect", "drain", "write", "refill"):
        assert stage in rec.stages, rec.stages
    assert rec.image_bytes > 0
    assert rec.stored_bytes < rec.image_bytes  # compression worked
    # write dominates (Table 1a shape)
    assert rec.stages["write"] > rec.stages["elect"]
    # the app keeps running afterwards
    n_before = len(log)
    world.engine.run(until=world.engine.now + 2.0)
    assert len(log) > n_before
    no_failures(world)


def test_checkpoint_image_lands_in_fs(world):
    log = []
    world.register_program("counter", counter_program(log))
    comp = DmtcpComputation(world)
    proc = comp.launch("node00", "counter")
    world.engine.run(until=0.5)
    outcome = comp.checkpoint()
    path = outcome.plan.images_by_host["node00"][0]
    ns = world.node_state("node00")
    file = ns.mounts.resolve(path).namespace.lookup(path)
    assert file is not None
    image = file.payload
    assert image.program == "counter"
    assert image.vpid == proc.pid
    assert image.regions and image.threads
    # restart script was generated next to the coordinator
    script = ns.mounts.resolve("/tmp/dmtcp/dmtcp_restart_script.sh")
    plan_file = script.namespace.lookup("/tmp/dmtcp/dmtcp_restart_script.sh")
    assert plan_file is not None
    assert "dmtcp_restart" in plan_file.payload.render_script()


def test_multiprocess_fork_tree_checkpoints_together(world):
    log = []

    def child(sys):
        for _ in range(100):
            yield from sys.sleep(0.1)
        yield from sys.exit(0)

    def main(sys, argv):
        yield from sys.fork(child)
        yield from sys.fork(child)
        for i in range(100):
            yield from sys.sleep(0.1)
            log.append(i)

    world.register_program("tree", main)
    comp = DmtcpComputation(world)
    comp.launch("node00", "tree")
    world.engine.run(until=1.0)
    outcome = comp.checkpoint()
    assert len(outcome.records) == 3  # parent + 2 children
    no_failures(world)


def test_distributed_socket_app_drains_in_flight_data(world):
    """Producer streams to a slow consumer; checkpoint catches data in
    kernel buffers; totals still add up afterwards."""
    state = {"received": 0, "sent": 0}
    N_MSGS = 60

    def consumer(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 4000)
        yield from sys.listen(lfd)
        fd = yield from sys.accept(lfd)
        while state["received"] < N_MSGS * 1000:
            chunk = yield from sys.recv(fd)
            assert chunk is not None
            state["received"] += chunk.nbytes
            yield from sys.sleep(0.05)  # slow reader: buffers fill

    def producer(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 4000)
        for _ in range(N_MSGS):
            yield from sys.send(fd, 1000)
            state["sent"] += 1000
            yield from sys.sleep(0.01)
        # stay alive so the checkpoint includes both ends
        yield from sys.sleep(60.0)

    world.register_program("consumer", consumer)
    world.register_program("producer", producer)
    comp = DmtcpComputation(world)
    comp.launch("node00", "consumer")
    comp.launch("node01", "producer")
    world.engine.run(until=0.5)  # mid-stream: data in flight
    outcome = comp.checkpoint()
    assert len(outcome.records) == 2
    # run to completion: every sent byte is eventually received
    world.engine.run_until(lambda: state["received"] >= N_MSGS * 1000)
    assert state["received"] == N_MSGS * 1000
    no_failures(world)


def test_two_checkpoints_in_sequence(world):
    log = []
    world.register_program("counter", counter_program(log))
    comp = DmtcpComputation(world)
    comp.launch("node00", "counter")
    world.engine.run(until=0.5)
    first = comp.checkpoint()
    second = comp.checkpoint()
    assert (first.ckpt_id, second.ckpt_id) == (1, 2)
    assert len(comp.state.history) == 2
    no_failures(world)


def test_compression_off_gives_bigger_faster_image(world):
    log1, log2 = [], []
    world.register_program("counter1", counter_program(log1))
    world.register_program("counter2", counter_program(log2))

    comp_gz = DmtcpComputation(world, coordinator_host="node00", port=7001,
                               ckpt_dir="/tmp/d1", compression=True)
    comp_gz.launch("node00", "counter1")
    comp_raw = DmtcpComputation(world, coordinator_host="node01", port=7002,
                                ckpt_dir="/tmp/d2", compression=False)
    comp_raw.launch("node01", "counter2")
    world.engine.run(until=0.5)
    gz = comp_gz.checkpoint()
    raw = comp_raw.checkpoint()
    assert gz.total_stored_bytes < raw.total_stored_bytes
    assert raw.records[0].stored_bytes == raw.records[0].image_bytes
    no_failures(world)


def test_shared_fd_leader_election_is_unique(world):
    """Section 4.3 step 3: for an FD shared by N processes (after fork),
    the F_SETOWN trick elects exactly one drain leader."""
    sockets = {}

    def child(sys):
        yield from sys.sleep(200.0)

    def main(sys, argv):
        a, b = yield from sys.socketpair()
        sockets["fds"] = (a, b)
        for _ in range(3):  # four processes share the socketpair
            yield from sys.fork(child)
        yield from sys.sleep(200.0)

    world.register_program("sharer", main)
    comp = DmtcpComputation(world)
    parent = comp.launch("node00", "sharer")
    world.engine.run(until=1.0)
    outcome = comp.checkpoint()
    assert len(outcome.records) == 4
    # exactly one image carries the drained data for each endpoint: the
    # election winner's (both endpoints led by someone, once)
    a, b = sockets["fds"]
    ns = world.node_state("node00")
    owners = {a: [], b: []}
    for path in outcome.plan.images_by_host["node00"]:
        image = ns.mounts.resolve(path).namespace.lookup(path).payload
        for fd in (a, b):
            if fd in image.drained:
                owners[fd].append(image.vpid)
    assert len(owners[a]) == 1, owners
    assert len(owners[b]) == 1, owners
    no_failures(world)


def test_checkpoint_stage_times_have_table1_shape(world):
    """Suspend ~tens of ms, elect ~ms, write dominant when compressed."""
    def bigheap(sys, argv):
        yield from sys.sbrk(64 * 2**20, "numeric")
        for _ in range(1000):
            yield from sys.sleep(0.1)

    world.register_program("bigheap", bigheap)
    comp = DmtcpComputation(world)
    comp.launch("node00", "bigheap")
    world.engine.run(until=0.5)
    rec = comp.checkpoint().records[0]
    assert 0.001 < rec.stages["suspend"] < 0.2
    assert rec.stages["elect"] < rec.stages["suspend"]
    assert rec.stages["write"] == max(rec.stages.values())
    no_failures(world)


def test_forked_checkpoint_slows_app_via_background_compression(world):
    """Section 5.3: "Forked checkpointing has the disadvantage that
    compression runs in parallel and may slow down the user process."
    The writer child's gzip burst contends for the node's cores."""
    progress = []

    def cruncher(sys, argv):
        yield from sys.sbrk(256 * 2**20, "numeric")
        for i in range(400):
            yield from sys.cpu(0.05)
            progress.append((i, (yield from sys.time())))

    world.register_program("cruncher", cruncher)
    # saturate the node: as many compute threads as cores
    comp = DmtcpComputation(world)
    for _ in range(4):
        comp.launch("node00", "cruncher")
    world.engine.run(until=2.0)

    def rate(window):
        lo, hi = window
        pts = [t for _i, t in progress if lo <= t <= hi]
        return len(pts) / (hi - lo)

    baseline = rate((1.0, 2.0))
    comp.checkpoint(forked=True)
    t0 = world.engine.now
    world.engine.run(until=t0 + 2.0)
    during_write = rate((t0, t0 + 2.0))
    # the background gzip steals cycles from the saturated CPU
    assert during_write < 0.9 * baseline, (during_write, baseline)
    no_failures(world)


def test_forked_checkpoint_much_faster_write_stage(world):
    def bigheap(sys, argv):
        yield from sys.sbrk(64 * 2**20, "numeric")
        for _ in range(2000):
            yield from sys.sleep(0.1)

    world.register_program("bigheap", bigheap)
    comp = DmtcpComputation(world)
    comp.launch("node00", "bigheap")
    world.engine.run(until=0.5)
    normal = comp.checkpoint()
    world.engine.run(until=world.engine.now + 20.0)  # let the writer finish
    forked = comp.checkpoint(forked=True)
    w_norm = normal.records[0].stages["write"]
    w_fork = forked.records[0].stages["write"]
    assert w_fork < w_norm / 3, (w_fork, w_norm)
    no_failures(world)
