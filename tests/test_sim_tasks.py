"""Unit tests for the cooperative task layer (generators-as-threads)."""

import pytest

from repro.errors import TaskCancelled, TaskError
from repro.sim import Engine, Future, Scheduler, Timeout


@pytest.fixture()
def world():
    eng = Engine()
    return eng, Scheduler(eng)


def test_task_runs_to_completion_and_returns_value(world):
    eng, sched = world

    def body():
        yield Timeout(1.0)
        return 42

    task = sched.spawn(body(), name="t")
    eng.run()
    assert task.done
    assert task.result == 42
    assert eng.now == 1.0


def test_timeouts_accumulate(world):
    eng, sched = world

    def body():
        yield Timeout(1.0)
        yield Timeout(2.0)

    sched.spawn(body())
    eng.run()
    assert eng.now == 3.0


def test_yield_none_reschedules_cooperatively(world):
    eng, sched = world
    order = []

    def body(label):
        for _ in range(3):
            order.append(label)
            yield None

    sched.spawn(body("a"))
    sched.spawn(body("b"))
    eng.run()
    assert order == ["a", "b", "a", "b", "a", "b"]
    assert eng.now == 0.0


def test_future_wait_and_resolve(world):
    eng, sched = world
    fut = Future("f")
    got = []

    def waiter():
        value = yield fut
        got.append(value)

    def resolver():
        yield Timeout(5.0)
        fut.resolve("hello")

    sched.spawn(waiter())
    sched.spawn(resolver())
    eng.run()
    assert got == ["hello"]
    assert eng.now == 5.0


def test_yield_on_already_resolved_future(world):
    eng, sched = world
    fut = Future()
    fut.resolve(7)

    def body():
        value = yield fut
        return value

    task = sched.spawn(body())
    eng.run()
    assert task.result == 7


def test_future_rejection_propagates_into_task(world):
    eng, sched = world
    fut = Future()
    caught = []

    def body():
        try:
            yield fut
        except ValueError as err:
            caught.append(str(err))

    sched.spawn(body())
    eng.call_at(1.0, fut.reject, ValueError("boom"))
    eng.run()
    assert caught == ["boom"]


def test_future_double_resolve_rejected(world):
    fut = Future()
    fut.resolve(1)
    with pytest.raises(TaskError):
        fut.resolve(2)


def test_join_another_task(world):
    eng, sched = world

    def child():
        yield Timeout(2.0)
        return "payload"

    def parent():
        value = yield child_task
        return value

    child_task = sched.spawn(child())
    parent_task = sched.spawn(parent())
    eng.run()
    assert parent_task.result == "payload"


def test_task_exception_recorded_in_failures(world):
    eng, sched = world

    def body():
        yield Timeout(1.0)
        raise RuntimeError("died")

    task = sched.spawn(body())
    eng.run()
    assert task.done
    assert len(sched.failures) == 1
    assert sched.failures[0][0] is task
    with pytest.raises(RuntimeError):
        _ = task.result


def test_cancel_throws_into_generator(world):
    eng, sched = world
    witnessed = []

    def body():
        try:
            yield Timeout(100.0)
        except TaskCancelled:
            witnessed.append("cancelled")
            raise

    task = sched.spawn(body())
    eng.call_at(1.0, task.cancel)
    eng.run()
    assert witnessed == ["cancelled"]
    assert task.done
    assert not sched.failures  # cancellation is not a failure


def test_handler_receives_unknown_yields(world):
    eng, sched = world
    seen = []

    def handler(task, call):
        seen.append(call)
        task.complete_call(call * 2)

    def body():
        doubled = yield 21
        return doubled

    task = sched.spawn(body(), handler=handler)
    eng.run()
    assert seen == [21]
    assert task.result == 42


def test_handler_fail_call_raises_in_task(world):
    eng, sched = world

    def handler(task, call):
        task.fail_call(ValueError("no such syscall"))

    def body():
        try:
            yield "bogus"
        except ValueError:
            return "handled"

    task = sched.spawn(body(), handler=handler)
    eng.run()
    assert task.result == "handled"


def test_yield_without_handler_is_error(world):
    eng, sched = world

    def body():
        yield "mystery"

    task = sched.spawn(body())
    eng.run()
    assert task.done
    assert sched.failures


def test_freeze_cancels_scheduled_resume(world):
    eng, sched = world
    progressed = []

    def body():
        yield Timeout(10.0)
        progressed.append("after-sleep")

    task = sched.spawn(body())
    eng.call_at(1.0, task.freeze)
    eng.run()
    assert progressed == []
    assert not task.done


def test_freeze_and_thaw_resumes_timeouts_from_scratch(world):
    # Freezing mid-Timeout and thawing re-runs nothing: the timeout was the
    # *scheduled resume*, so thaw resumes the generator immediately.  The
    # kernel layer is responsible for re-issuing interrupted sleeps; at the
    # sim layer thaw continues the continuation.
    eng, sched = world

    def body():
        yield Timeout(10.0)
        return eng.now

    task = sched.spawn(body())
    eng.call_at(1.0, task.freeze)
    eng.call_at(5.0, task.thaw)
    eng.run()
    assert task.done


def test_freeze_while_waiting_on_future_discards_waiter(world):
    eng, sched = world
    fut = Future()

    def body():
        yield fut
        return "woke"

    task = sched.spawn(body())
    eng.call_at(1.0, task.freeze)
    eng.call_at(2.0, fut.resolve, "late")
    eng.run()
    assert not task.done  # frozen task missed the resolve

    # thaw re-parks nothing: pending_call was a Future wait handled at the
    # sim layer, so the generator resumes with None.
    task.thaw()
    eng.run()
    assert task.result == "woke"


def test_freeze_with_pending_handler_call_redispatches_on_thaw(world):
    eng, sched = world
    dispatches = []

    def parking_handler(task, call):
        dispatches.append(("old", call))
        # never completes: simulates a blocked syscall

    def completing_handler(task, call):
        dispatches.append(("new", call))
        task.complete_call("result-from-new-kernel")

    def body():
        value = yield "read"
        return value

    task = sched.spawn(body(), handler=parking_handler)
    eng.call_at(1.0, task.freeze)
    eng.run()
    assert dispatches == [("old", "read")]
    assert task.pending_call == "read"

    task.thaw(handler=completing_handler)
    eng.run()
    assert dispatches == [("old", "read"), ("new", "read")]
    assert task.result == "result-from-new-kernel"


def test_drop_abandons_without_closing_generator(world):
    eng, sched = world
    cleanup = []

    def body():
        try:
            yield Timeout(100.0)
        finally:
            cleanup.append("closed")

    task = sched.spawn(body())
    eng.call_at(1.0, task.drop)
    eng.run()
    assert task.done
    # generator not closed by drop itself (GC may close it later)
    assert cleanup == []


def test_cannot_freeze_finished_task(world):
    eng, sched = world

    def body():
        return 1
        yield  # pragma: no cover

    task = sched.spawn(body())
    eng.run()
    with pytest.raises(TaskError):
        task.freeze()


def test_scheduler_tracks_live_tasks(world):
    eng, sched = world

    def body():
        yield Timeout(1.0)

    t1 = sched.spawn(body())
    t2 = sched.spawn(body())
    assert sched.tasks == {t1, t2}
    eng.run()
    assert sched.tasks == set()
