"""A Chombo-like block-structured stencil code.

Section 2 compares against DejaVu on "the Chombo benchmark", where
DejaVu "report[s] executing ten checkpoints per hour with 45% overhead"
from message logging and page-protection tracking, versus DMTCP's
essentially zero overhead between checkpoints.  This workload gives the
DejaVu baseline something honest to slow down: per iteration it dirties
a configurable fraction of its working set and exchanges halo messages
with its neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.process import ProgramSpec, RegionSpec
from repro.mpi.api import mpi_init

MB = 2**20

CHOMBO_SPEC = ProgramSpec(
    "chombo", regions=(RegionSpec("code", 4 * MB, "code"),)
)

#: Per-iteration behaviour the baselines instrument.
WORKING_SET_MB = 48
DIRTY_FRACTION_PER_ITER = 0.35
MSG_BYTES = 128 * 1024
CPU_PER_ITER = 0.12


def chombo_main(sys, argv):
    """argv: chombo [iterations]"""
    iters = int(argv[1]) if len(argv) > 1 else 20
    comm = yield from mpi_init(sys)
    region = yield from sys.sbrk(WORKING_SET_MB * MB, "numeric")

    rng = np.random.default_rng(99 + comm.rank)
    u = rng.standard_normal(256)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for it in range(iters):
        ghost = yield from comm.sendrecv(right, u[-8:], MSG_BYTES, left, tag=300 + it)
        u = 0.9 * u + 0.1 * np.roll(u, 1)
        u[:8] += 0.05 * ghost
        yield from sys.cpu(CPU_PER_ITER)
        # the stencil writes most of its grid every step: page-protection
        # checkpointers must fault and track all of it
        yield from sys.mem_touch(region, DIRTY_FRACTION_PER_ITER)
    total = yield from comm.allreduce(float(np.abs(u).sum()), nbytes=64)
    assert np.isfinite(total)
    yield from comm.finalize()
    return total


def register_chombo(world) -> None:
    """Register the Chombo-like stencil with a world."""
    world.register_program("chombo", chombo_main, CHOMBO_SPEC)
