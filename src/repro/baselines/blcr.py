"""A BLCR-style kernel-module checkpointer (Hargrove & Duell).

Section 2: "BLCR is particularly notable because of its widespread
usage.  BLCR itself can only checkpoint processes on a single machine"
-- distributed jobs need an MPI library integrated with it.  The model
checkpoints a process tree on one node from kernel context (no gzip, no
coordination) and *refuses* whenever a socket crosses the node boundary,
which is precisely the gap DMTCP fills.
"""

from __future__ import annotations

from repro.core import compression
from repro.errors import CheckpointError
from repro.kernel.process import Process
from repro.kernel.sockets import SocketEndpoint
from repro.kernel.world import World
from repro.sim.tasks import TaskState


class BlcrCheckpointer:
    """cr_checkpoint for one node's process tree."""

    def __init__(self, world: World):
        self.world = world

    def _tree(self, root: Process) -> list[Process]:
        out, stack = [], [root]
        while stack:
            p = stack.pop()
            out.append(p)
            stack.extend(p.children)
        return out

    def checkpoint_tree(self, root: Process, path_prefix: str = "/tmp/blcr") -> float:
        """Checkpoint ``root`` and its descendants; returns duration.

        Raises :class:`CheckpointError` if any process holds a socket
        connected to a remote host -- the kernel module has no drain
        protocol and no peer coordination.
        """
        procs = self._tree(root)
        for proc in procs:
            for fd, entry in proc.fds.items():
                desc = entry.description
                if isinstance(desc, SocketEndpoint) and desc.peer is not None:
                    if desc.peer.node is not desc.node:
                        raise CheckpointError(
                            f"BLCR: pid {proc.pid} fd {fd} is connected to "
                            f"{desc.peer.node.hostname}; kernel-level checkpointing "
                            "cannot checkpoint cross-machine sockets"
                        )
        t0 = self.world.engine.now
        frozen = []
        writes = []
        for proc in procs:
            for thread in proc.user_threads:
                task = thread.task
                if task is not None and not task.done and task.state is not TaskState.FROZEN:
                    task.freeze()
                    frozen.append(task)
            est = compression.estimate(
                [(r.size, r.profile.name) for r in proc.address_space.regions],
                self.world.spec.cpu,
                enabled=False,  # BLCR writes raw images from kernel context
            )
            writes.append(proc.node.disk.write(est.output_bytes))
        done = {"n": 0}
        for w in writes:
            w.add_done(lambda: done.__setitem__("n", done["n"] + 1))
        self.world.engine.run_until(lambda: done["n"] == len(writes))
        for task in frozen:
            if not task.done:
                task.thaw()
        return self.world.engine.now - t0
