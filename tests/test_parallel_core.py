"""Sharded simulation core: plan, grants, fabric, gate, equivalence.

The unit layers (ShardPlan, _compute_grants, ShardBinding) are tested
pure; the fabric and gate run against real worlds bound to a one-shard
inline transport (a ``threading.Barrier(1)`` trips synchronously, so a
single bound world drives windows from the test thread).  Equivalence
tests then run the full DMTCP stack through ``run_sharded`` at several
shard counts and demand byte-identical committed artifacts.
"""

import os

import pytest

from repro.cluster import build_cluster
from repro.errors import SimulationError, SyscallError
from repro.hardware.topology import ShardPlan, shard_lookahead_s
from repro.kernel.syscalls import connect_retry
from repro.sim.parallel import (
    ShardContext,
    ShardProtocolError,
    _compute_grants,
    _InlineGroup,
    _InlineTransport,
    run_sharded,
)

# ----------------------------------------------------------------------
# ShardPlan / lookahead
# ----------------------------------------------------------------------


def test_shard_plan_contiguous_blocks():
    hosts = [f"node{i:02d}" for i in range(10)]
    plan = ShardPlan.build(hosts, 4)
    owners = [plan.owner(h) for h in hosts]
    assert owners == sorted(owners)  # contiguous blocks
    assert set(owners) == {0, 1, 2, 3}
    for s in range(4):
        assert [plan.owner(h) for h in plan.shard_hosts(s)] == [s] * len(
            plan.shard_hosts(s)
        )
    assert [plan.node_rank(h) for h in hosts] == list(range(10))


def test_shard_plan_clamps_to_host_count():
    plan = ShardPlan.build(["a", "b"], 8)
    assert plan.n_shards == 2
    assert plan.owner("a") == 0 and plan.owner("b") == 1


def test_shard_lookahead_is_link_latency():
    world = build_cluster(n_nodes=2)
    plan = ShardPlan.build(world.machine.hostnames, 2)
    assert shard_lookahead_s(world.spec, plan) == world.spec.network.latency_s


# ----------------------------------------------------------------------
# _compute_grants (pure)
# ----------------------------------------------------------------------

L = 0.001


def _rep(mode, t_next, flag=False, now=0.0, outbox=()):
    return (mode, t_next, flag, now, L, list(outbox))


def test_grants_window_is_tmin_plus_lookahead():
    grants = _compute_grants([_rep(("run", None), 5.0), _rep(("run", None), 7.0)])
    assert grants == [("w", 5.0 + L, False, []), ("w", 5.0 + L, False, [])]


def test_grants_pending_message_bounds_tmin():
    msg = (2.0, 0, 0, 1, "dat", None, None)
    grants = _compute_grants(
        [_rep(("run", None), 5.0, outbox=[msg]), _rep(("run", None), 7.0)]
    )
    # the in-flight arrival at t=2 is the earliest event anywhere
    assert grants[0] == ("w", 2.0 + L, False, [])
    assert grants[1] == ("w", 2.0 + L, False, [msg])


def test_grants_messages_merge_sorted_across_shards():
    a = (3.0, 1, 0, 0, "dat", None, "late-origin-rank-1")
    b = (3.0, 0, 5, 0, "dat", None, "rank-0")
    c = (2.5, 2, 0, 0, "dat", None, "earliest")
    grants = _compute_grants(
        [_rep(("run", None), 4.0, outbox=[a]), _rep(("run", None), 4.0, outbox=[b, c])]
    )
    assert grants[0][3] == [c, b, a]  # (arrival, origin_rank, seq) order


def test_grants_run_clamps_final_window_at_until():
    grants = _compute_grants([_rep(("run", 5.0), 4.9995)])
    assert grants == [("w", 5.0, True, [])]  # inclusive boundary, like serial


def test_grants_run_stops_at_until_when_tmin_beyond():
    grants = _compute_grants([_rep(("run", 5.0), 6.0), _rep(("run", 5.0), None)])
    assert grants == [("s", 5.0, None, []), ("s", 5.0, None, [])]


def test_grants_idle_run_keeps_clock():
    grants = _compute_grants([_rep(("run", 5.0), None, now=1.0)])
    assert grants == [("s", 1.0, None, [])]


def test_grants_until_predicate_stops_everyone():
    grants = _compute_grants(
        [_rep(("until",), 4.0, flag=True, now=2.0), _rep(("until",), 3.0, now=2.0)]
    )
    assert grants == [("s", 2.0, None, []), ("s", 2.0, None, [])]


def test_grants_until_drained_without_predicate_is_error():
    grants = _compute_grants([_rep(("until",), None), _rep(("until",), None)])
    assert all(g[0] == "e" for g in grants)


def test_grants_mode_divergence_is_error():
    grants = _compute_grants([_rep(("run", None), 1.0), _rep(("until",), 1.0)])
    assert all(g[0] == "e" for g in grants)
    assert "SPMD" in grants[0][1]


# ----------------------------------------------------------------------
# Single-shard bound world (synchronous inline transport)
# ----------------------------------------------------------------------


def bound_world(n_nodes=2, seed=0):
    ctx = ShardContext(0, 1, _InlineTransport(_InlineGroup(1, 30.0), 0), "inline")
    world = build_cluster(n_nodes=n_nodes, seed=seed)
    ctx.bind(world)
    return ctx, world


def _run(world, until=None):
    world.engine.run(until=until)
    assert not world.scheduler.failures, world.scheduler.failures


def test_binding_post_rejects_lookahead_violation():
    ctx, world = bound_world()
    binding = ctx.binding
    with pytest.raises(SimulationError, match="lookahead"):
        binding.post("node00", "node01", world.engine.now, "dat", None)


def test_gate_run_until_before_now_is_noop():
    ctx, world = bound_world()
    world.engine.call_after(0.5, lambda: None)
    world.engine.run(until=1.0)
    assert world.engine.now == 0.5  # drained queue leaves the clock, like serial
    windows = ctx.gate.windows
    world.engine.run(until=0.25)  # behind the clock: serial no-ops, so do we
    assert world.engine.now == 0.5
    assert ctx.gate.windows == windows  # not even an exchange window ran


def test_gate_rejects_nested_run():
    ctx, world = bound_world()
    err = []

    def nested():
        try:
            world.engine.run(until=world.engine.now + 1.0)
        except SimulationError as e:
            err.append(str(e))

    world.engine.call_after(0.1, nested)
    world.engine.run(until=1.0)
    assert err and "nested" in err[0]


def test_fabric_cross_node_roundtrip_matches_serial_timing():
    """Same workload, plain serial world vs fabric-bound world: the
    client completes its RTT + echo at the identical virtual time."""

    def scenario(world):
        times = {}

        def server(sys, argv):
            lfd = yield from sys.socket()
            yield from sys.bind(lfd, 5000)
            yield from sys.listen(lfd)
            cfd = yield from sys.accept(lfd)
            chunk = yield from sys.recv(cfd)
            yield from sys.send(cfd, chunk.nbytes, data=chunk.data)

        def client(sys, argv):
            fd = yield from sys.socket()
            yield from sys.connect(fd, "node00", 5000)
            times["connected"] = yield from sys.time()
            yield from sys.send(fd, 64, data=b"x" * 64)
            chunk = yield from sys.recv(fd)
            t = yield from sys.time()
            times["echoed"] = (t, chunk.data)

        world.register_program("server", server)
        world.register_program("client", client)
        world.spawn_process("node00", "server")
        world.engine.run(until=0.01)  # listener up before the first syn
        world.spawn_process("node01", "client")
        _run(world)
        return times

    serial = scenario(build_cluster(n_nodes=2))
    _, world = bound_world(2)
    fabric = scenario(world)
    assert fabric == serial
    assert world.shard.stats["msgs_out"] >= 4  # syn+ack+2 dat minimum


def test_fabric_refused_connect_raises_econnrefused():
    _, world = bound_world(2)
    errs = []

    def client(sys, argv):
        fd = yield from sys.socket()
        try:
            yield from sys.connect(fd, "node00", 9999)
        except SyscallError as e:
            errs.append(e.errno)

    world.register_program("c", client)
    world.spawn_process("node01", "c")
    _run(world)
    assert errs == ["ECONNREFUSED"]


def test_fabric_many_chunks_arrive_in_tcp_order():
    _, world = bound_world(2)
    got = []

    def server(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        while True:
            chunk = yield from sys.recv(cfd)
            if chunk is None:  # EOF: the fin landed after all data
                got.append("eof")
                return
            got.append(chunk.data)

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        for i in range(20):
            yield from sys.send(fd, 8, data=i)
        yield from sys.close(fd)

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    world.spawn_process("node01", "client")
    _run(world)
    assert got == list(range(20)) + ["eof"]


def test_remote_spawn_returns_stub():
    group = _InlineGroup(1, 30.0)
    ctx = ShardContext(0, 2, _InlineTransport(group, 0), "inline")
    world = build_cluster(n_nodes=2)
    ctx.bind(world)  # 2-shard plan, this replica owns only node00
    world.register_program("app", lambda sys, argv: iter(()))
    stub = world.spawn_process("node01", "app")
    assert stub.is_remote_stub and not stub.alive
    assert world.shard.stats["remote_spawns"] == 1
    real = world.spawn_process("node00", "app")
    assert not getattr(real, "is_remote_stub", False)


# ----------------------------------------------------------------------
# run_sharded drivers
# ----------------------------------------------------------------------


def _counting_scenario(ctx, n_nodes):
    world = build_cluster(n_nodes=n_nodes)
    ctx.bind(world)
    fired = []

    def app(sys, argv):
        for _ in range(5):
            yield from sys.sleep(0.1)
        fired.append((yield from sys.gethostname()))

    world.register_program("app", app)
    for host in world.machine.hostnames:
        world.spawn_process(host, "app")
    world.engine.run(until=1.0)
    return sorted(fired)


def test_run_sharded_inline_partitions_work():
    res = run_sharded(_counting_scenario, 2, 4, backend="inline", timeout_s=60)
    assert res.values[0] == ["node00", "node01"]
    assert res.values[1] == ["node02", "node03"]
    stats = res.stats
    assert [s["shard_id"] for s in stats] == [0, 1]
    assert all(s["windows"] >= 1 and s["hosts"] == 2 for s in stats)
    # stop normalization: both shard clocks end at the same global time
    assert len({s["sim_now"] for s in stats}) == 1


def test_run_sharded_validates_arguments():
    with pytest.raises(ValueError, match="n_shards"):
        run_sharded(_counting_scenario, 0, 2)
    with pytest.raises(ValueError, match="backend"):
        run_sharded(_counting_scenario, 1, 2, backend="gpu")


def _divergent_scenario(ctx, n_nodes):
    world = build_cluster(n_nodes=n_nodes)
    ctx.bind(world)
    if ctx.shard_id == 0:
        world.engine.call_after(1.0, lambda: None)
        world.engine.run()  # shard 1 never enters this collective
    return None


def test_run_sharded_detects_spmd_divergence():
    with pytest.raises(ShardProtocolError):
        run_sharded(_divergent_scenario, 2, 2, backend="inline", timeout_s=15)


def _broadcast_scenario(ctx):
    world = build_cluster(n_nodes=ctx.n_shards)
    ctx.bind(world)
    return ctx.broadcast({"from_root": ctx.shard_id} if ctx.is_root else None)


def test_broadcast_delivers_root_value_everywhere():
    res = run_sharded(_broadcast_scenario, 3, backend="inline", timeout_s=60)
    assert res.values == [{"from_root": 0}] * 3


# ----------------------------------------------------------------------
# DMTCP equivalence: shards=1 vs shards=N, byte-identical artifacts
# ----------------------------------------------------------------------


def _fig5_small(n_shards, backend="inline"):
    from repro.harness.parallel import fig5_xl_scenario

    return run_sharded(
        fig5_xl_scenario,
        n_shards,
        16,  # compute processes
        2,  # per node -> 8 nodes
        backend=backend,
        timeout_s=120,
    )


def test_dmtcp_cycle_equivalent_across_shard_counts():
    base = _fig5_small(1)
    events = sum(s["events_fired"] for s in base.stats)
    assert base.root_value["total_processes"] == 16
    assert base.root_value["image_checksums"]
    assert base.root_value["barrier_releases"]
    for n in (2, 4):
        res = _fig5_small(n)
        assert res.root_value == base.root_value
        assert res.values[1:] == [None] * (n - 1)
        assert sum(s["events_fired"] for s in res.stats) == events


def test_dmtcp_cycle_equivalent_mp_backend():
    """The fork-based performance backend commits the same artifacts."""
    inline = _fig5_small(2)
    mp = _fig5_small(2, backend="mp")
    assert mp.root_value == inline.root_value
    assert [s["events_fired"] for s in mp.stats] == [
        s["events_fired"] for s in inline.stats
    ]


def test_coordscale_equivalent_across_shard_counts():
    from repro.harness.parallel import coordscale_scenario

    runs = {
        n: run_sharded(
            coordscale_scenario, n, 64, 8, 4, backend="inline", timeout_s=120
        )
        for n in (1, 2)
    }
    assert runs[1].root_value == runs[2].root_value
    assert runs[1].root_value["n_procs"] == 64
    assert runs[1].root_value["root_messages"] > 0


# ----------------------------------------------------------------------
# Launch-layer plumbing
# ----------------------------------------------------------------------


def test_resolve_sim_shards_env(monkeypatch):
    from repro.core.launch import resolve_sim_shards

    monkeypatch.delenv("DMTCP_SIM_SHARDS", raising=False)
    assert resolve_sim_shards() == 1
    monkeypatch.setenv("DMTCP_SIM_SHARDS", "4")
    assert resolve_sim_shards() == 4
    assert resolve_sim_shards(2) == 2  # explicit beats the environment
    monkeypatch.setenv("DMTCP_SIM_SHARDS", "0")
    with pytest.raises(ValueError):
        resolve_sim_shards()


def test_computation_requires_binding_for_shards(monkeypatch):
    from repro.core.launch import DmtcpComputation

    world = build_cluster(n_nodes=2)
    with pytest.raises(ValueError, match="run_sharded"):
        DmtcpComputation(world, sim_shards=2)
    monkeypatch.setenv("DMTCP_SIM_SHARDS", "2")
    with pytest.raises(ValueError, match="run_sharded"):
        DmtcpComputation(build_cluster(n_nodes=2))
