"""dmtcp_checkpoint / dmtcp command / dmtcp_restart, as a host-side API.

:class:`DmtcpComputation` is what an end user touches.  It wires the
pieces into a world (coordinator process, hijack factory, command and
restart programs) and exposes the three commands from Section 3:

>>> comp = dmtcp_checkpoint(world, "node00", "my_app", ["my_app"])  # launch
>>> outcome = comp.checkpoint()                                     # dmtcp command --checkpoint
>>> comp.restart()                                                  # dmtcp_restart_script.sh

The harness-facing methods run the simulation engine until the requested
operation completes and return structured outcomes with timings.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.core.coordinator import (
    CheckpointOutcome,
    CoordinatorState,
    RestartOutcome,
    make_coordinator_program,
    make_dmtcp_command_program,
)
from repro.core.hijack import DmtcpRuntime, WrappedSys
from repro.core.manager import manager_main
from repro.core.restart import make_restart_program
from repro.errors import CheckpointError, RestartError, SimulationError
from repro.kernel.process import ProgramSpec, RegionSpec
from repro.kernel.world import HIJACK_ENV, World

#: Modest footprints for the DMTCP utility processes themselves.
_COORD_SPEC = ProgramSpec(
    "dmtcp_coordinator",
    regions=(RegionSpec("code", 256 * 1024, "code"), RegionSpec("heap", 512 * 1024, "text")),
)
_UTIL_SPEC = ProgramSpec(
    "dmtcp_util",
    regions=(RegionSpec("code", 128 * 1024, "code"), RegionSpec("heap", 128 * 1024, "text")),
)


def resolve_sim_shards(explicit: Optional[int] = None) -> int:
    """Shard count for the parallel simulation core (DESIGN.md §11).

    ``explicit`` wins; otherwise the ``DMTCP_SIM_SHARDS`` environment
    variable; otherwise 1 (plain serial engine).  Harness entry points
    call this to decide between a serial run and
    :func:`repro.sim.parallel.run_sharded`.
    """
    if explicit is not None:
        shards = int(explicit)
    else:
        shards = int(os.environ.get("DMTCP_SIM_SHARDS", "1") or "1")
    if shards < 1:
        raise ValueError(f"sim_shards must be >= 1, got {shards}")
    return shards


def resolve_store_replicas(explicit: Optional[int], spec) -> int:
    """Replication factor for the chunk store (DESIGN.md §12).

    ``explicit`` wins; otherwise the ``DMTCP_STORE_REPLICAS`` environment
    variable; otherwise :attr:`DmtcpSpec.store_replicas`.
    """
    if explicit is not None:
        replicas = int(explicit)
    else:
        replicas = int(
            os.environ.get("DMTCP_STORE_REPLICAS", "") or spec.store_replicas
        )
    if replicas < 1:
        raise ValueError(f"store replicas must be >= 1, got {replicas}")
    return replicas


class DmtcpComputation:
    """One coordinator plus every process launched under it."""

    def __init__(
        self,
        world: World,
        coordinator_host: Optional[str] = None,
        port: int = 7779,
        ckpt_dir: str = "/tmp/dmtcp",
        compression: bool = True,
        incremental: bool = False,
        interval: float = 0.0,
        relay: bool = False,
        supervise: bool = False,
        tree_fanout: Optional[int] = None,
        sim_shards: Optional[int] = None,
        store: bool = False,
        store_replicas: Optional[int] = None,
        tenant: str = "",
        external_coordinator: bool = False,
    ):
        self.world = world
        #: multi-tenant service (repro.service): a non-empty tenant name
        #: namespaces this computation's programs, env, and trace spans so
        #: many computations can share one world.  With
        #: ``external_coordinator`` the computation does not spawn its own
        #: coordinator process -- a CoordinatorHub hosts its
        #: CoordinatorState alongside other tenants' behind one port.
        self.tenant = tenant
        self.external_coordinator = external_coordinator
        if (tenant or external_coordinator) and (relay or tree_fanout or store):
            raise ValueError(
                "multi-tenant mode is incompatible with relay/tree/store "
                "(those layers assume exclusive ownership of the world)"
            )
        suffix = f":{tenant}" if tenant else ""
        self._coordinator_program = "dmtcp_coordinator" + suffix
        self._restart_program = "dmtcp_restart" + suffix
        #: Parallel simulation core (repro.sim.parallel): how many engine
        #: shards this computation expects to run on.  The world must
        #: already be bound to a shard context (ShardContext.bind) when
        #: shards > 1 -- the binding is per-world and SPMD, so it cannot
        #: be installed retroactively from inside one replica.
        self.sim_shards = resolve_sim_shards(sim_shards)
        if store and self.sim_shards > 1:
            raise SimulationError(
                "the checkpoint store is serial-only: chunk traffic is "
                "modeled directly against node disks/NICs, which the "
                f"sharded fabric cannot carry yet (sim_shards="
                f"{self.sim_shards}). Run with sim_shards=1 (or unset "
                "DMTCP_SIM_SHARDS) -- the serial fallback -- to enable "
                "DMTCP_STORE."
            )
        if self.sim_shards > 1 and world.shard is None:
            raise ValueError(
                f"sim_shards={self.sim_shards} but the world has no shard "
                "binding; build the computation inside a scenario run by "
                "repro.sim.parallel.run_sharded (see harness/parallel.py)"
            )
        self.coordinator_host = coordinator_host or world.machine.hostnames[0]
        self.port = port
        self.ckpt_dir = ckpt_dir
        self.compression = compression
        self.incremental = incremental
        self.relay = relay
        if relay and tree_fanout:
            raise ValueError("relay and tree_fanout are mutually exclusive")
        #: hierarchical coordination (repro.coord.tree): one gateway per
        #: node, arranged in a fanout-ary forest under the coordinator
        self.tree_fanout = tree_fanout
        #: hostname -> live gateway process (empty in star mode; the
        #: supervisor re-trees around a dead one via respawn_gateway)
        self.gateway_processes: dict[str, object] = {}
        self._gateway_env: dict[str, dict] = {}
        #: supervision layer: coordinator watchdog + heartbeat, member
        #: barrier timeouts with rollback, atomic checksummed images
        self.supervise = supervise
        self.state = CoordinatorState(
            port=port, interval=interval, tracer=world.tracer, tenant=tenant
        )
        if supervise:
            dspec = world.spec.dmtcp
            self.state.supervise = True
            self.state.barrier_timeout_s = dspec.barrier_timeout_s
            self.state.heartbeat_interval_s = dspec.heartbeat_interval_s
            self.state.failover_retry_timeout_s = dspec.failover_retry_timeout_s
        #: content-addressed checkpoint image store (repro.store): chunk
        #: dedup across ranks/generations, k-way replication, anti-entropy
        #: repair, streaming restart from the nearest live replica
        self.store = None
        if store:
            from repro.store import ChunkStore

            self.store = ChunkStore(
                world,
                replicas=resolve_store_replicas(store_replicas, world.spec.dmtcp),
            )
            world.store = self.store
            self.state.store = self.store
        #: connection-table stash across exec (the hijack library persists
        #: its state across the exec boundary; Section 4.2's exec wrappers)
        self._exec_stash: dict[tuple[str, int], DmtcpRuntime] = {}
        self._register_programs()
        if external_coordinator:
            # hub mode: the TenantRegistry owns the world's hijack factory
            # (dispatching on DMTCP_TENANT) and the hub process owns the
            # shared port; this computation spawns nothing here
            self.coordinator_process = None
        else:
            world.hijack_factory = self._hijack_factory
            self.coordinator_process = world.spawn_process(
                self.coordinator_host,
                self._coordinator_program,
                argv=[self._coordinator_program],
            )
        if relay:
            # distributed-coordinator mode (Section 6 future work): one
            # barrier-combining relay per node
            from repro.core.relay import RELAY_PORT, register_relay

            register_relay(world)
            self.relay_port = RELAY_PORT
            relay_env = {
                "DMTCP_COORD_HOST": self.coordinator_host,
                "DMTCP_COORD_PORT": str(self.port),
            }
            for hostname in world.machine.hostnames:
                world.spawn_process(hostname, "dmtcp_relay", env=relay_env)
        if tree_fanout:
            self._spawn_gateway_tree(tree_fanout)

    def _spawn_gateway_tree(self, fanout: int) -> None:
        """Hierarchical coordination: one gateway per node, fanout-ary.

        Gateway ranks follow :class:`repro.coord.nodeset.NodeSet` order
        over the machine file, so the whole membership is one folded
        string and any subtree is range arithmetic on ranks.
        """
        from repro.coord.nodeset import NodeSet
        from repro.coord.tree import (
            GATEWAY_PORT,
            GATEWAY_SPEC,
            TreeTopology,
            make_gateway_program,
        )

        world = self.world
        spec = world.spec.dmtcp
        self.node_set = NodeSet.from_hostnames(world.machine.hostnames)
        self.topology = TreeTopology(n=len(self.node_set), fanout=fanout)
        self.gateway_port = GATEWAY_PORT
        world.register_program(
            "dmtcp_gateway", make_gateway_program(world.tracer), GATEWAY_SPEC
        )
        for rank in self.topology:
            hostname = self.node_set[rank]
            parent = self.topology.parent(rank)
            env = {
                "DMTCP_GW_PARENT_HOST": (
                    self.coordinator_host if parent is None else self.node_set[parent]
                ),
                "DMTCP_GW_PARENT_PORT": str(
                    self.port if parent is None else GATEWAY_PORT
                ),
                "DMTCP_GW_PORT": str(GATEWAY_PORT),
                "DMTCP_TREE_FLUSH": str(spec.tree_flush_s),
                "DMTCP_GW_HEARTBEAT": str(spec.tree_heartbeat_s),
                "DMTCP_GW_BACKOFF": str(spec.reconnect_backoff_s),
                "DMTCP_GW_BACKOFF_MAX": str(spec.reconnect_backoff_max_s),
                "DMTCP_GW_ATTEMPTS": str(spec.reconnect_attempts),
                "DMTCP_GW_RECV_TIMEOUT": str(spec.member_recv_timeout_s),
                "DMTCP_GW_JITTER": str(spec.retry_jitter),
            }
            if self.supervise:
                env["DMTCP_SUPERVISE"] = "1"
            self._gateway_env[hostname] = env
            self.gateway_processes[hostname] = world.spawn_process(
                hostname, "dmtcp_gateway", env=env
            )

    def respawn_gateway(self, hostname: str):
        """Re-tree around a dead gateway: spawn its replacement in place.

        The replacement listens on the same node-local port, so orphaned
        children (managers and child gateways, which retry with backoff)
        reattach and replay their hellos without any topology change.
        """
        if hostname not in self._gateway_env:
            raise ValueError(f"no gateway belongs on {hostname}")
        self.world.tracer.count("coord.gateway_respawns")
        proc = self.world.spawn_process(
            hostname, "dmtcp_gateway", env=self._gateway_env[hostname]
        )
        self.gateway_processes[hostname] = proc
        return proc

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _register_programs(self) -> None:
        if not self.external_coordinator:
            self.world.register_program(
                self._coordinator_program,
                make_coordinator_program(self.state),
                _COORD_SPEC,
            )
        self.world.register_program(
            "dmtcp_command", make_dmtcp_command_program(self.world.tracer), _UTIL_SPEC
        )
        self.world.register_program(
            self._restart_program, make_restart_program(self), _UTIL_SPEC
        )

    def base_env(self) -> dict[str, str]:
        """Environment injected into every checkpointed process."""
        env = {
            HIJACK_ENV: "1",
            "DMTCP_COORD_HOST": self.coordinator_host,
            "DMTCP_COORD_PORT": str(self.port),
            "DMTCP_CKPT_DIR": self.ckpt_dir,
            "DMTCP_GZIP": "1" if self.compression else "0",
        }
        if self.incremental:
            env["DMTCP_INCREMENTAL"] = "1"
        if self.store is not None:
            env["DMTCP_STORE"] = "1"
            env["DMTCP_STORE_REPLICAS"] = str(self.store.replicas)
        if self.relay:
            env["DMTCP_RELAY_PORT"] = str(self.relay_port)
        if self.tree_fanout:
            env["DMTCP_TREE_PORT"] = str(self.gateway_port)
        if self.supervise:
            env["DMTCP_SUPERVISE"] = "1"
            env["DMTCP_ATOMIC_IMAGES"] = "1"
            # resilience layer: one RPC deadline + jitter fraction for
            # every coordinator round-trip made by this computation
            dspec = self.world.spec.dmtcp
            env["DMTCP_RPC_DEADLINE"] = str(dspec.member_recv_timeout_s)
            env["DMTCP_RETRY_JITTER"] = str(dspec.retry_jitter)
        if self.tenant:
            env["DMTCP_TENANT"] = self.tenant
        return env

    def _hijack_factory(self, world: World, process, base_sys) -> WrappedSys:
        """Called by the world whenever a DMTCP-env process starts."""
        stashed = self._exec_stash.pop((process.node.hostname, process.pid), None)
        parent_rt: Optional[DmtcpRuntime] = None
        if process.parent is not None:
            parent_rt = process.parent.user_state.get("dmtcp")
        if parent_rt is not None and parent_rt.in_checkpoint:
            # the forked-checkpointing writer child: not part of the
            # computation, gets the raw interface and no manager thread
            return base_sys
        if stashed is not None:
            runtime = stashed
            runtime.process = process
            runtime.conn_table.by_fd = {
                fd: info
                for fd, info in runtime.conn_table.by_fd.items()
                if fd in process.fds
            }
        elif parent_rt is not None:
            runtime = parent_rt.fork_child(process)
        else:
            runtime = DmtcpRuntime(world, process, self, vpid=process.pid)
        process.user_state["dmtcp"] = runtime
        wrapped = WrappedSys(base_sys, runtime)
        runtime.sys = wrapped
        world.spawn_thread(
            process,
            manager_main(runtime),
            f"ckpt-manager[{process.pid}]",
            kind="manager",
        )
        return wrapped

    def stash_for_exec(self, runtime: DmtcpRuntime) -> None:
        """exec wrapper support: the library's state survives the exec."""
        key = (runtime.process.node.hostname, runtime.process.pid)
        self._exec_stash[key] = runtime

    def retire_checkpointed_process(self, process) -> None:
        """--kill mode: tear the process down, keeping continuations."""
        self.world.destroy_process(process, keep_continuations=True)

    # ------------------------------------------------------------------
    # User commands
    # ------------------------------------------------------------------
    def launch(
        self,
        hostname: str,
        program: str,
        argv: Optional[list[str]] = None,
        env: Optional[dict[str, str]] = None,
    ):
        """``dmtcp_checkpoint <program>``: run a program under DMTCP."""
        merged = self.base_env()
        if env:
            merged.update(env)
        return self.world.spawn_process(hostname, program, argv or [program], merged)

    def request_checkpoint(self, kill: bool = False, forked: bool = False):
        """Issue ``dmtcp command --checkpoint`` (non-blocking).

        Returns a handle dict whose "outcome" key is filled on completion:
        a :class:`CheckpointOutcome` on success, or the coordinator's
        refusal kind (``"busy"``, ``"aborted"``) as a plain string.
        """
        if forked and self.store is not None:
            raise ValueError(
                "forked checkpointing is incompatible with the chunk store: "
                "the store's lease/commit exchange finalizes stored_bytes "
                "inside the write, which a background COW writer would race"
            )
        handle: dict = {"outcome": None}

        def on_complete(outcome: CheckpointOutcome) -> None:
            if handle["outcome"] is None:
                handle["outcome"] = outcome
                self.state.on_checkpoint_complete.remove(on_complete)

        self.state.on_checkpoint_complete.append(on_complete)
        argv = ["dmtcp_command", "checkpoint"]
        if kill:
            argv.append("--kill")
        if forked:
            argv.append("--forked")
        env = dict(self.base_env())
        env.pop(HIJACK_ENV)  # utilities are not themselves checkpointed
        proc = self.world.spawn_process(
            self.coordinator_host, "dmtcp_command", argv, env
        )

        def on_exit() -> None:
            # the command client exited: a refusal travels in the exit
            # code (the coordinator's "busy"/"aborted" reply); otherwise
            # on_complete resolves the handle when the checkpoint lands
            from repro.core.coordinator import EXIT_ABORTED, EXIT_BUSY

            refusal = {EXIT_BUSY: "busy", EXIT_ABORTED: "aborted"}.get(
                proc.exit_code
            )
            if refusal is not None and handle["outcome"] is None:
                handle["outcome"] = refusal
                if on_complete in self.state.on_checkpoint_complete:
                    self.state.on_checkpoint_complete.remove(on_complete)

        proc.exited.add_done(on_exit)
        return handle

    def checkpoint(
        self, kill: bool = False, forked: bool = False, timeout: float = 3600.0
    ) -> CheckpointOutcome:
        """Checkpoint the whole computation; block (in virtual time)."""
        handle = self.request_checkpoint(kill=kill, forked=forked)
        self.world.engine.run_until(lambda: handle["outcome"] is not None)
        outcome = handle["outcome"]
        if outcome is None:
            shard = self.world.shard
            if shard is not None and not shard.owns(self.coordinator_host):
                # sharded SPMD run: the coordinator -- and therefore the
                # outcome -- lives on the shard owning its host; this
                # replica participated in the windows and is done
                return None
            raise CheckpointError("checkpoint did not complete")
        return outcome

    def kill_computation(self) -> None:
        """Simulate cluster failure: destroy every checkpointed process.

        In multi-tenant worlds only this computation's processes die --
        other tenants' processes also carry HIJACK_ENV and must survive.
        """
        for process in list(self.world.live_processes()):
            if not process.env.get(HIJACK_ENV):
                continue
            if process.env.get("DMTCP_TENANT", "") != self.tenant:
                continue
            self.world.destroy_process(process, keep_continuations=True)

    def restart_async(
        self,
        plan=None,
        placement: Optional[dict[str, str]] = None,
    ) -> dict:
        """Spawn the restart (one dmtcp_restart per host) without blocking.

        Usable from inside a running simulation (the AutoRestartSupervisor
        fires it from an engine timer, where ``run_until`` would recurse).
        Returns a handle dict whose "outcome" key is filled on completion.

        ``placement`` optionally relocates an original host's processes to
        a different host (the discovery service finds the new addresses).
        Images are made visible on the target host first, as they would be
        via shared storage or scp in a real migration.
        """
        plan = plan or (self.state.last_checkpoint.plan if self.state.last_checkpoint else None)
        if plan is None:
            raise RestartError("no checkpoint to restart from")
        placement = placement or {}
        if self.store is not None:
            self._check_store_restorable(plan)
        handle: dict = {"outcome": None}

        def on_complete(outcome: RestartOutcome) -> None:
            if handle["outcome"] is None:
                handle["outcome"] = outcome
                self.state.on_restart_complete.remove(on_complete)

        self.state.on_restart_complete.append(on_complete)
        total = plan.total_processes
        for orig_host, paths in sorted(plan.images_by_host.items()):
            target = placement.get(orig_host, orig_host)
            if target != orig_host:
                self._copy_images(orig_host, target, paths)
            env = dict(self.base_env())
            env.pop(HIJACK_ENV)  # the restart process itself is not hijacked
            argv = [self._restart_program]
            if self.supervise:
                argv.append("--validate")  # verify image manifests
            argv.extend([str(total), *paths])
            self.world.spawn_process(target, self._restart_program, argv, env)
        return handle

    def _check_store_restorable(self, plan) -> None:
        """Fail fast when a manifest references chunks with no live
        replica: the restarters would wedge mid-restore otherwise.  The
        AutoRestartSupervisor applies the same filter when *selecting* a
        plan; this guards direct ``restart()`` calls."""
        from repro.faults.supervisor import _image_file

        for host, paths in sorted(plan.images_by_host.items()):
            for path in paths:
                file = _image_file(self.world, host, path)
                payload = file.payload if file is not None else None
                if payload is not None and not self.store.image_restorable(payload):
                    raise RestartError(
                        f"checkpoint {plan.ckpt_id}: image {path} references "
                        "chunks with no live replica; reboot the holders or "
                        "wait for anti-entropy repair, or restart from an "
                        "older checkpoint"
                    )

    def restart(
        self,
        plan=None,
        placement: Optional[dict[str, str]] = None,
    ) -> RestartOutcome:
        """Run the generated restart script and block (in virtual time)."""
        handle = self.restart_async(plan, placement)
        self.world.engine.run_until(lambda: handle["outcome"] is not None)
        return handle["outcome"]

    def respawn_coordinator(self):
        """Bring up a replacement coordinator after the original died.

        The CoordinatorState (including checkpoint history, the restart
        discovery service's knowledge, and the supervision settings)
        survives in this object; only connection-scoped state is reset.
        Members reconnect on their own (supervised managers retry with
        backoff), so the new coordinator starts with an empty member set
        that refills within a few heartbeats.
        """
        if self.external_coordinator:
            raise SimulationError(
                "external-coordinator tenants have no coordinator process "
                "of their own to respawn; respawn the hub instead"
            )
        state = self.state
        tracer = state.tracer
        # resilience layer (section 15): a checkpoint in flight when the
        # coordinator died is rolled back by the members' own recv
        # timeouts; stamp a pending-retry record so the replacement
        # coordinator re-runs it once the membership re-registers.  A
        # mid-flight *restart* needs no stamp -- its restarters exit(1)
        # and the AutoRestartSupervisor's stall retry re-drives them.
        if state.supervise and state.phase == "checkpoint":
            state.failover_retry = {
                "expected": state.member_count,
                "options": dict(state.ckpt_options),
                "deadline": state.clock() + state.failover_retry_timeout_s,
            }
            if tracer is not None:
                tracer.count("coord.failover_interrupted_ckpts")
        # close any barrier spans left open by the crash mid-checkpoint
        for name in list(state.barrier_open):
            state.barrier_open.pop(name)
            state.barrier_last_arrival.pop(name, None)
            if tracer is not None:
                tracer.end(
                    state.barrier_track(name), name, cat="barrier",
                    tenant=state.tenant or None, aborted=True,
                )
        state.members = {}
        state.restarter_fds = set()
        state.barrier_arrivals = {}
        state.barrier_counts = {}
        state.barrier_relay_fds = {}
        state.barrier_open_t = {}
        state.gateway_fds = set()
        state.pending_command_fds = []
        state.done_fds = set()
        state.records = []
        state.images_by_host = {}
        state.phase = "idle"
        state.last_progress = 0.0
        if tracer is not None:
            tracer.count("coord.respawns")
        self.coordinator_process = self.world.spawn_process(
            self.coordinator_host,
            self._coordinator_program,
            argv=[self._coordinator_program],
        )
        return self.coordinator_process

    def _copy_images(self, src_host: str, dst_host: str, paths: list[str]) -> None:
        """Make image files visible on the relocation target (as shared
        storage or an scp before restart would)."""
        src_ns = self.world.node_state(src_host)
        dst_ns = self.world.node_state(dst_host)
        pending = list(paths)
        while pending:
            path = pending.pop()
            src_mount = src_ns.mounts.resolve(path)
            file = src_mount.namespace.lookup(path)
            if file is None:
                raise RestartError(f"missing image {path} on {src_host}")
            dst_mount = dst_ns.mounts.resolve(path)
            if dst_mount.namespace.lookup(path) is None:
                copy = dst_mount.namespace.create(path)
                copy.size = file.size
                copy.payload = file.payload
                copy.last_write_time = file.last_write_time
            # a delta image is useless without its ancestors: follow the
            # parent chain so the whole lineage travels with the leaf
            parent = getattr(file.payload, "parent_image", None)
            if parent is not None:
                pending.append(parent)

    def run_command(self, cmd: str, arg: str = "") -> None:
        """Run a generic ``dmtcp command <cmd>`` client to completion."""
        env = dict(self.base_env())
        env.pop(HIJACK_ENV)
        proc = self.world.spawn_process(
            self.coordinator_host, "dmtcp_command", ["dmtcp_command", cmd, arg], env
        )
        self.world.engine.run_until(lambda: not proc.alive)

    def status(self) -> dict:
        """`dmtcp command --status`: members, phase, checkpoint count."""
        return {
            "members": self.state.member_count,
            "phase": self.state.phase,
            "checkpoints": len(self.state.history),
        }


def dmtcp_checkpoint(
    world: World,
    hostname: str,
    program: str,
    argv: Optional[list[str]] = None,
    **kwargs,
) -> DmtcpComputation:
    """One-call launch: build the computation and start the program."""
    comp = DmtcpComputation(world, **kwargs)
    comp.launch(hostname, program, argv)
    return comp
