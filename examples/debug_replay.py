#!/usr/bin/env python3
"""Debugging long-running jobs with checkpoints (Section 1, and use
cases 4-5: "checkpointed image as the ultimate bug report").

A long pipeline hits a bug deep into its run.  With periodic
checkpoints, the developer repeatedly restarts from the image taken
just before the failure instead of re-running from scratch -- and can
restart it on a single workstation even though it ran on a cluster.

Run:  python examples/debug_replay.py
"""

from repro.apps import register_all_apps
from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation

TRACE: list = []


def flaky_pipeline(sys, argv):
    """Fails at stage 23 -- but only the first time (a heisenbug)."""
    for stage in range(30):
        yield from sys.sleep(0.3)
        yield from sys.cpu(0.05)
        TRACE.append(stage)
        if stage == 23 and not BUG_FIXED[0]:
            raise RuntimeError(f"corrupted state at stage {stage}")


BUG_FIXED = [False]


def main() -> None:
    world = build_cluster(n_nodes=2, seed=5)
    register_all_apps(world)
    world.register_program("pipeline", flaky_pipeline)

    comp = DmtcpComputation(world)
    proc = comp.launch("node00", "pipeline")
    # checkpoint at stage ~20, shortly before the bug
    world.engine.run(until=6.3)
    print(f"pipeline at stage {TRACE[-1]}; taking a pre-bug checkpoint")
    outcome = comp.checkpoint(kill=True)

    # run on: the job crashes at stage 23 -- reproduce it from the image
    restart = comp.restart(plan=outcome.plan)
    world.engine.run_until(lambda: world.scheduler.failures)
    task, err = world.scheduler.failures[0]
    print(f"bug reproduced from the checkpoint in {world.engine.now:.1f}s "
          f"(virtual): {err!r} in {task.name}")
    world.scheduler.failures.clear()

    # the developer inspects, patches, and replays from the same image.
    # Generators are single-shot, so a fresh run with the same seed
    # regenerates the identical pre-bug state (the simulation is
    # deterministic -- 'the ultimate bug report').
    TRACE.clear()
    BUG_FIXED[0] = True
    world2 = build_cluster(n_nodes=2, seed=5)
    register_all_apps(world2)
    world2.register_program("pipeline", flaky_pipeline)
    comp2 = DmtcpComputation(world2)
    comp2.launch("node00", "pipeline")
    world2.engine.run(until=6.3)
    ckpt2 = comp2.checkpoint(kill=True)
    comp2.restart(plan=ckpt2.plan, placement={"node00": "node01"})
    world2.engine.run(until=world2.engine.now + 20.0)
    assert TRACE[-1] == 29 and not world2.scheduler.failures
    print(f"patched run replayed from the equivalent checkpoint on node01: "
          f"completed all 30 stages (final: {TRACE[-3:]})")


if __name__ == "__main__":
    main()
