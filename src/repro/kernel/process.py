"""Processes, threads, and program images.

A *program* is registered with the :class:`~repro.kernel.world.World` as a
``(ProgramSpec, main)`` pair: the spec declares the initial address-space
layout (code, libraries, heap -- with content profiles), and ``main`` is a
generator function ``main(sys, argv)`` driven by the task trampoline.

Processes own an address space, an FD table (entries reference *shared
open-file descriptions*, so descriptors stay shared after ``fork`` exactly
as POSIX mandates -- the detail DMTCP's leader election exists for), an
environment, signal dispositions, and a controlling terminal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import KernelError, SyscallError
from repro.kernel.memory import AddressSpace, ContentProfile, PROFILES
from repro.sim.tasks import Future, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import Node
    from repro.kernel.world import World


@dataclass(frozen=True)
class RegionSpec:
    """One class of mappings a program sets up at exec time."""

    kind: str
    size: int
    profile: str = "text"
    count: int = 1
    shared: bool = False
    path: Optional[str] = None

    def resolve_profile(self) -> ContentProfile:
        """Look up this spec's content profile by name."""
        try:
            return PROFILES[self.profile]
        except KeyError:
            raise KernelError(f"unknown content profile {self.profile!r}") from None


@dataclass(frozen=True)
class ProgramSpec:
    """Initial memory image of a program."""

    name: str
    regions: tuple[RegionSpec, ...] = ()
    description: str = ""

    @property
    def total_bytes(self) -> int:
        """Total mapped bytes the spec describes."""
        return sum(r.size * r.count for r in self.regions)


#: A small default image: code + stack + a modest heap.
DEFAULT_SPEC = ProgramSpec(
    name="default",
    regions=(
        RegionSpec("code", 512 * 1024, "code"),
        RegionSpec("stack", 128 * 1024, "random"),
        RegionSpec("heap", 1024 * 1024, "text"),
    ),
)


class Thread:
    """One thread of a process; wraps a sim task."""

    _tids = itertools.count(1)

    def __init__(self, process: "Process", name: str, kind: str = "user"):
        self.tid = next(Thread._tids)
        self.process = process
        self.name = name
        #: "user" threads are suspended at checkpoint time; "manager" is
        #: the DMTCP checkpoint-manager thread, which keeps running.
        self.kind = kind
        self.task: Optional[Task] = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Thread {self.name} tid={self.tid} of pid={self.process.pid}>"


class FdEntry:
    """A slot in the FD table: points at a shared description."""

    __slots__ = ("description", "cloexec")

    def __init__(self, description: Any, cloexec: bool = False):
        self.description = description
        self.cloexec = cloexec


class Process:
    """A simulated Unix process."""

    def __init__(
        self,
        world: "World",
        node: "Node",
        pid: int,
        program: str,
        argv: list[str],
        env: dict[str, str],
        parent: Optional["Process"] = None,
    ):
        self.world = world
        self.node = node
        self.pid = pid
        self.program = program
        self.argv = list(argv)
        self.env = dict(env)
        self.parent = parent
        self.children: list[Process] = []
        self.address_space = AddressSpace(world.spec.os.page_bytes)
        self.fds: dict[int, FdEntry] = {}
        self._next_fd = 3  # 0-2 notionally reserved for stdio
        self.threads: list[Thread] = []
        self.state = "running"  # running | zombie | dead
        self.exit_code: Optional[int] = None
        self.exited = Future(f"exit:{pid}")
        self.signal_handlers: dict[int, str] = {}
        self.pending_signals: list[int] = []
        #: Controlling terminal (a PtyPair) and session id.
        self.ctty: Any = None
        self.sid: int = pid
        #: Scratch space for in-process runtimes (the DMTCP hijack library
        #: keeps its connection table here -- it lives in process memory).
        self.user_state: dict[str, Any] = {}
        #: Syscall interface factory result cached by the world.
        self.sys: Any = None
        #: Creation timestamp (used in globally unique connection IDs).
        self.start_time = world.engine.now

    # ------------------------------------------------------------------
    # FD table
    # ------------------------------------------------------------------
    def alloc_fd(self, description: Any, cloexec: bool = False) -> int:
        """Install a description at the next free fd; returns the fd."""
        fd = self._next_fd
        self._next_fd += 1
        description.incref()
        self.fds[fd] = FdEntry(description, cloexec)
        return fd

    def install_fd(self, fd: int, description: Any, cloexec: bool = False) -> None:
        """Place a description at a specific slot (dup2 / restart path)."""
        if fd in self.fds:
            self.drop_fd(fd)
        description.incref()
        self.fds[fd] = FdEntry(description, cloexec)
        self._next_fd = max(self._next_fd, fd + 1)

    def get_fd(self, fd: int) -> Any:
        """The description behind ``fd`` (EBADF if closed)."""
        entry = self.fds.get(fd)
        if entry is None:
            raise SyscallError("EBADF", f"pid {self.pid}: fd {fd}")
        return entry.description

    def drop_fd(self, fd: int) -> None:
        """Close one fd slot (decrefs the shared description)."""
        entry = self.fds.pop(fd, None)
        if entry is None:
            raise SyscallError("EBADF", f"pid {self.pid}: fd {fd}")
        entry.description.decref()

    def fork_fd_table(self, child: "Process") -> None:
        """POSIX fork semantics: the child shares every open description."""
        for fd, entry in self.fds.items():
            entry.description.incref()
            child.fds[fd] = FdEntry(entry.description, entry.cloexec)
        child._next_fd = self._next_fd

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Is the process still running (not zombie/dead)?"""
        return self.state == "running"

    @property
    def user_threads(self) -> list[Thread]:
        """Live application threads (the ones checkpoints suspend)."""
        return [t for t in self.threads if t.kind == "user" and t.task is not None and not t.task.done]

    @property
    def live_threads(self) -> list[Thread]:
        """Every live thread including DMTCP manager threads."""
        return [t for t in self.threads if t.task is not None and not t.task.done]

    def build_image_from_spec(self, spec: ProgramSpec) -> None:
        """Lay out the initial address space at exec time."""
        self.address_space = AddressSpace(self.world.spec.os.page_bytes)
        # Program name keys content identity: every rank of the same
        # binary lays out the same regions, so the chunk store dedups
        # their unwritten pages across the whole computation.
        self.address_space.content_tag = self.program or spec.name
        for region_spec in spec.regions:
            profile = region_spec.resolve_profile()
            for i in range(region_spec.count):
                path = region_spec.path
                if path is not None and region_spec.count > 1:
                    path = f"{path}.{i}"
                self.address_space.map_region(
                    region_spec.size,
                    region_spec.kind,
                    profile,
                    path=path,
                    shared=region_spec.shared,
                )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Process pid={self.pid} {self.program} on {self.node.hostname} {self.state}>"


class Description:
    """Base class for shared open-file descriptions (refcounted)."""

    def __init__(self) -> None:
        self.refcount = 0
        #: fcntl(F_SETOWN) owner pid -- lives on the *description*, shared
        #: by every process holding a duplicate of the descriptor.  DMTCP
        #: misuses exactly this for shared-FD leader election.
        self.owner_pid: int = 0

    def incref(self) -> None:
        """One more fd slot references this description."""
        self.refcount += 1

    def decref(self) -> None:
        """Drop one reference; the last close tears the object down."""
        if self.refcount <= 0:
            raise KernelError(f"{self!r}: decref below zero")
        self.refcount -= 1
        if self.refcount == 0:
            self.on_last_close()

    def on_last_close(self) -> None:  # pragma: no cover - overridden
        """Subclass hook: run teardown when the refcount hits zero."""
        pass
