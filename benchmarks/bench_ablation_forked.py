"""Ablation: forked checkpointing (Section 5.3).

"The time for writing the checkpoint image to disk is almost entirely
eliminated by using the technique of forked checkpointing" -- typical
checkpoint times drop from ~2 s to ~0.2 s, at the cost of background
compression competing with the application for CPU.
"""

from repro.core.launch import DmtcpComputation
from repro.harness.experiment import build_world
from repro.harness.fig4 import register_fig4
from repro.harness.report import table

from benchmarks._util import run_timed, save_and_print, save_json


def _run():
    world = build_world(8, seed=0)
    register_fig4(world)
    comp = DmtcpComputation(world)
    comp.launch(
        "node00",
        "orterun",
        ["orterun", "-n", "8", "nas_mg", "1000000"],
    )
    world.engine.run(until=8.0)
    normal = comp.checkpoint()
    world.engine.run(until=world.engine.now + 30.0)  # let writers drain
    forked = comp.checkpoint(forked=True)
    world.engine.run(until=world.engine.now + 30.0)
    return normal, forked


def test_forked_checkpointing(benchmark):
    (normal, forked), wall = run_timed(benchmark, _run)
    text = table(
        ["mode", "visible_ckpt_s", "write_stage_s"],
        [
            ("normal (gz)", normal.duration, normal.records[0].stages["write"]),
            ("forked (gz)", forked.duration, forked.records[0].stages["write"]),
        ],
        title="Forked checkpointing ablation (NAS/MG, 8 nodes; paper: ~2 s -> ~0.2 s)",
    )
    save_and_print("ablation_forked", text)
    save_json(
        "ablation_forked",
        {
            "normal": {
                "visible_ckpt_s": normal.duration,
                "write_stage_s": normal.records[0].stages["write"],
            },
            "forked": {
                "visible_ckpt_s": forked.duration,
                "write_stage_s": forked.records[0].stages["write"],
            },
            "wall_clock_s": wall,
        },
    )

    # an order-of-magnitude drop in visible checkpoint time
    assert forked.duration < normal.duration / 3
    assert forked.records[0].stages["write"] < normal.records[0].stages["write"] / 5
