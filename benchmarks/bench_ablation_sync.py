"""Ablation: the cost of syncing checkpoints to the platter.

Section 5.2: "if a sync is issued for ParGeant4 (compression enabled) a
mean additional cost of 0.79 seconds (with a standard deviation of
0.24) is incurred."  The default (no sync) leaves images in the page
cache, which is also why Figure 6's implied bandwidth beats the disk.
"""

from repro.harness.ablations import run_sync_ablation
from repro.harness.experiment import mean_std
from repro.harness.report import table

from benchmarks._util import run_timed, save_and_print, save_json

SEEDS = [0, 1, 2]


def test_sync_after_checkpoint(benchmark):
    results, wall = run_timed(
        benchmark, lambda: [run_sync_ablation(seed=s) for s in SEEDS]
    )
    extras = [r.sync_extra_s for r in results]
    mean, std = mean_std(extras)
    text = table(
        ["seed", "ckpt_s", "sync_extra_s"],
        [(s, r.checkpoint_s, r.sync_extra_s) for s, r in zip(SEEDS, results)],
        title=f"Sync ablation (ParGeant4, gz): extra = {mean:.2f} +/- {std:.2f} s "
        "(paper: 0.79 +/- 0.24)",
    )
    save_and_print("ablation_sync", text)
    save_json(
        "ablation_sync",
        {
            "seeds": dict(zip(map(str, SEEDS), results)),
            "mean_sync_extra_s": mean,
            "std_sync_extra_s": std,
            "wall_clock_s": wall,
        },
    )

    # sync adds a visible but sub-checkpoint-scale cost
    assert all(e > 0.05 for e in extras), extras
    assert all(e < 2.5 * r.checkpoint_s for e, r in zip(extras, results))
