"""Per-stage timing records (Table 1 comes straight out of these).

Since the observability refactor, :class:`StageClock` is a thin veneer
over :class:`repro.obs.Tracer` spans: ``begin``/``end`` open and close a
span on the process's track, and the recorded stage duration is exactly
the span's duration.  Table 1 numbers and exported traces therefore come
from the same measurement and can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.obs.tracer import Tracer

#: Stage names, matching Table 1 rows.
CKPT_STAGES = [
    "suspend",
    "elect",
    "drain",
    "write",
    "refill",
]
RESTART_STAGES = [
    "restore_files",
    "reconnect",
    "restore_memory",
    "refill",
]


class StageClock:
    """Accumulates (stage -> duration) for one process's checkpoint.

    Each stage is one tracer span on ``track``; durations come from the
    tracer's span measurements (which work even when recording is off).
    """

    __slots__ = ("tracer", "track", "cat", "tenant", "t_start", "stages")

    def __init__(self, tracer: Tracer, track: str, cat: str = "ckpt", tenant=None):
        self.tracer = tracer
        self.track = track
        self.cat = cat
        self.tenant = tenant
        self.t_start = tracer.clock()
        self.stages: dict[str, float] = {}

    def begin(self, stage: str) -> None:
        """Open the span for ``stage``."""
        self.tracer.begin(self.track, stage, cat=self.cat, tenant=self.tenant)

    def end(self, stage: str) -> None:
        """Close the open stage span, accumulating its duration."""
        duration = self.tracer.end(self.track, stage, cat=self.cat, tenant=self.tenant)
        self.stages[stage] = self.stages.get(stage, 0.0) + duration

    @property
    def total(self) -> float:
        """Sum of all recorded stage durations."""
        return sum(self.stages.values())


@dataclass
class CheckpointRecord:
    """One process's contribution to one cluster-wide checkpoint."""

    ckpt_id: int
    hostname: str
    vpid: int
    program: str
    stages: dict[str, float]
    image_bytes: int
    stored_bytes: int
    compressed: bool

    @property
    def total(self) -> float:
        """Sum of this record's stage durations."""
        return sum(self.stages.values())


def aggregate_stages(records: list[CheckpointRecord], names: list[str]) -> dict[str, float]:
    """Mean per-stage duration across processes (Table 1 methodology:
    per-node parallel stages are averaged; barrier-to-barrier stages are
    effectively equal across processes)."""
    out = {}
    for name in names:
        vals = [r.stages.get(name, 0.0) for r in records]
        out[name] = mean(vals) if vals else 0.0
    return out
