"""Hierarchical coordination: compact node addressing + propagation tree.

The paper's coordinator is a deliberate star -- every checkpoint manager
holds one socket to a single stateless coordinator (Section 3) -- and
Section 6 names the scaling fix: "the single coordinator can be replaced
by a distributed coordinator using well-known algorithms for distributed
global barriers."  This package implements that future work at cluster
scale:

* :mod:`repro.coord.nodeset` -- ClusterShell-style ``RangeSet`` /
  ``NodeSet`` addressing, so a 32k-node membership is one folded string
  and subtree routing is range arithmetic instead of per-object
  bookkeeping.
* :mod:`repro.coord.tree` -- a configurable-fanout propagation tree of
  gateway relays that aggregate barrier arrivals from their subtree into
  a single upstream message and fan releases (and every other
  coordinator verb) back down.  Enabled with
  ``DmtcpComputation(tree_fanout=N)``.
"""

from repro.coord.nodeset import NodeSet, RangeSet
from repro.coord.tree import TreeTopology

__all__ = ["NodeSet", "RangeSet", "TreeTopology"]
