"""The discrete-event engine: a virtual clock and an ordered event heap.

The engine knows nothing about processes or checkpoints; it schedules
callbacks at virtual times.  Determinism is guaranteed by breaking ties in
(time, insertion sequence) order, so two runs with the same seed replay the
same interleaving.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A cancellable scheduled callback.

    Cancellation is O(1): the heap entry stays in place but is skipped when
    popped.  ``fired`` and ``cancelled`` are exposed for diagnostics.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.engine: Optional["Engine"] = None

    def cancel(self) -> None:
        """Mark the event dead; it is skipped when popped."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if self.engine is not None:
                self.engine._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.9f} seq={self.seq} {state} {getattr(self.fn, '__name__', self.fn)}>"


class Engine:
    """Virtual clock plus event heap.

    Typical use::

        eng = Engine()
        eng.call_after(1.5, hello)
        eng.run()          # runs until the heap is empty
        assert eng.now == 1.5
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        #: Live (scheduled, not cancelled, not fired) event count, kept in
        #: step with push/cancel/fire so ``pending`` never scans the heap.
        self._live: int = 0
        self._running = False
        #: Total events executed; useful for complexity assertions in tests.
        self.events_fired: int = 0
        #: Optional repro.obs.Tracer; the world wires its own in.  Kept as
        #: a plain attribute (None by default) so the hot loop pays one
        #: attribute test when tracing is off.
        self.tracer = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        ev = Event(time, next(self._seq), fn, args)
        ev.engine = self
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.call_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if idle."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next event.  Returns False if the heap was empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.count("sim.events_fired")
            tracer.count_max("sim.heap_depth_max", len(self._heap))
        ev = heapq.heappop(self._heap)
        self.now = ev.time
        ev.fired = True
        self._live -= 1
        self.events_fired += 1
        ev.fn(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run events until the heap drains or ``until`` is passed.

        ``max_events`` is a runaway-loop backstop; hitting it raises
        :class:`SimulationError` rather than hanging the test suite.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        try:
            fired = 0
            while True:
                self._drop_cancelled()
                if not self._heap:
                    return
                if until is not None and self._heap[0].time > until:
                    self.now = until
                    return
                self.step()
                fired += 1
                if fired >= max_events:
                    raise SimulationError(
                        f"engine exceeded {max_events} events; likely a livelock"
                    )
        finally:
            self._running = False

    def run_until(self, predicate: Callable[[], bool], max_events: int = 50_000_000) -> None:
        """Run until ``predicate()`` becomes true.  Raises if the heap drains first."""
        if self._running:
            raise SimulationError("Engine.run_until() is not reentrant")
        self._running = True
        try:
            fired = 0
            while not predicate():
                if not self.step():
                    raise SimulationError("event heap drained before predicate held")
                fired += 1
                if fired >= max_events:
                    raise SimulationError(
                        f"engine exceeded {max_events} events waiting for predicate"
                    )
        finally:
            self._running = False
