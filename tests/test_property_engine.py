"""Property tests for the discrete-event engine.

A random sequence of schedule/cancel/step/peek operations must preserve
the engine's core invariants: the pending count matches the live events,
the clock never runs backwards, peek_time() names the next live event,
and same-time events fire in insertion order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine

# One operation per list element:
#   ("schedule", delay)  -- call_after(delay, ...)
#   ("cancel", i)        -- cancel the i-th scheduled event (mod count)
#   ("step",)            -- fire the next event
#   ("peek",)            -- check peek_time against live events
op = st.one_of(
    st.tuples(st.just("schedule"), st.floats(min_value=0.0, max_value=10.0,
                                             allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
    st.tuples(st.just("step")),
    st.tuples(st.just("peek")),
)


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(op, max_size=60))
def test_property_engine_invariants(ops):
    eng = Engine()
    scheduled = []  # every Event ever created, in creation order
    fired = []      # (time, seq) of fired events, in firing order

    def live():
        return [ev for ev in scheduled if not ev.cancelled and not ev.fired]

    for operation in ops:
        if operation[0] == "schedule":
            ev = eng.call_after(operation[1], lambda e=None: fired.append(e),)
            ev.args = ((ev.time, ev.seq),)
            scheduled.append(ev)
        elif operation[0] == "cancel":
            if scheduled:
                target = scheduled[operation[1] % len(scheduled)]
                if not target.fired:
                    target.cancel()
        elif operation[0] == "step":
            before = eng.now
            had_work = bool(live())
            assert eng.step() is had_work
            assert eng.now >= before, "clock ran backwards"
        else:  # peek
            expected = min((ev.time for ev in live()), default=None)
            assert eng.peek_time() == expected

        # invariant: pending counts exactly the live events
        assert eng.pending == len(live())

    # drain; firing order must be (time, insertion-seq) sorted -- the
    # determinism contract every layer above the engine relies on
    while eng.step():
        pass
    assert fired == sorted(fired)
    assert eng.pending == 0
    assert [ev for ev in scheduled if not ev.cancelled and not ev.fired] == []


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=5.0,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=30))
def test_property_same_time_events_fire_in_insertion_order(delays):
    eng = Engine()
    order = []
    for i, delay in enumerate(delays):
        eng.call_after(delay, order.append, (delay, i))
    eng.run()
    assert order == sorted(order), "ties must break by insertion order"
    assert eng.now == max(d for d in delays)
