"""Unit and property tests for seeded random streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_stream_is_reproducible():
    a = RandomStreams(42).stream("net")
    b = RandomStreams(42).stream("net")
    assert list(a.integers(0, 1000, 16)) == list(b.integers(0, 1000, 16))


def test_streams_are_independent_of_creation_order():
    s1 = RandomStreams(7)
    s2 = RandomStreams(7)
    # draw from "a" first in one factory, "b" first in the other
    a1 = s1.stream("a").integers(0, 1000, 8)
    b1 = s1.stream("b").integers(0, 1000, 8)
    b2 = s2.stream("b").integers(0, 1000, 8)
    a2 = s2.stream("a").integers(0, 1000, 8)
    assert list(a1) == list(a2)
    assert list(b1) == list(b2)


def test_different_names_differ():
    s = RandomStreams(0)
    assert list(s.stream("x").integers(0, 2**30, 8)) != list(
        s.stream("y").integers(0, 2**30, 8)
    )


def test_stream_is_cached_not_restarted():
    s = RandomStreams(0)
    first = s.stream("n").integers(0, 100, 4)
    second = s.stream("n").integers(0, 100, 4)
    # a fresh factory draws the concatenation, proving no reseed happened
    fresh = RandomStreams(0).stream("n").integers(0, 100, 8)
    assert list(first) + list(second) == list(fresh)


def test_fork_derives_independent_factory():
    root = RandomStreams(5)
    child1 = root.fork("node-1")
    child2 = root.fork("node-2")
    assert child1.seed != child2.seed
    assert list(child1.stream("m").integers(0, 2**30, 4)) != list(
        child2.stream("m").integers(0, 2**30, 4)
    )
    # forking is itself deterministic
    again = RandomStreams(5).fork("node-1")
    assert again.seed == child1.seed


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_property_stream_deterministic(seed, name):
    x = RandomStreams(seed).stream(name).integers(0, 2**40)
    y = RandomStreams(seed).stream(name).integers(0, 2**40)
    assert x == y
