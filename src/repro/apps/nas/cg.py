"""NAS CG (Conjugate Gradient), class C model.

A genuinely distributed CG solve: rows of a diagonally dominant sparse
SPD matrix are partitioned across ranks; every iteration allgathers the
search vector for the mat-vec and allreduces the two dot products.  The
residual must decrease monotonically -- that is the built-in
verification a checkpoint/restart must not disturb.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nas.common import (
    NAS_FOOTPRINTS,
    allocate_footprint,
    iters_from_argv,
    nas_env_scale,
)
from repro.mpi.api import mpi_init

#: Miniature global problem size (rows); must divide by comm.size.
N_GLOBAL = 256


def _local_matrix(rank: int, size: int) -> tuple[np.ndarray, slice]:
    rows = N_GLOBAL // size
    lo = rank * rows
    rng = np.random.default_rng(314159)  # same matrix on every rank
    dense = rng.random((N_GLOBAL, N_GLOBAL))
    dense = (dense + dense.T) * 0.5
    dense[dense < 0.9] = 0.0  # sparsify
    dense += np.eye(N_GLOBAL) * N_GLOBAL  # diagonal dominance -> SPD
    return dense[lo : lo + rows], slice(lo, lo + rows)


def cg_main(sys, argv):
    """NAS CG rank: distributed conjugate gradient with verification."""
    fp = NAS_FOOTPRINTS["cg"]
    iters = iters_from_argv(argv, fp)
    scale = yield from nas_env_scale(sys)
    comm = yield from mpi_init(sys)
    yield from allocate_footprint(sys, fp, scale, comm.size)

    a_local, my_rows = _local_matrix(comm.rank, comm.size)
    b_local = np.ones(a_local.shape[0])
    x = np.zeros(N_GLOBAL)
    r_local = b_local.copy()
    p_local = r_local.copy()
    rs_old = yield from comm.allreduce(float(r_local @ r_local), nbytes=64)

    residuals = [rs_old]
    for _ in range(iters):
        p_parts = yield from comm.allgather(p_local, nbytes=fp.msg_bytes)
        p_full = np.concatenate(p_parts)
        ap_local = a_local @ p_full
        p_ap = yield from comm.allreduce(float(p_local @ ap_local), nbytes=64)
        alpha = rs_old / p_ap
        x[my_rows] += alpha * p_local
        r_local = r_local - alpha * ap_local
        rs_new = yield from comm.allreduce(float(r_local @ r_local), nbytes=64)
        residuals.append(rs_new)
        p_local = r_local + (rs_new / rs_old) * p_local
        rs_old = rs_new
        yield from sys.cpu(fp.cpu_per_iter * scale)

    # verification: CG on an SPD system converges monotonically here
    assert all(b <= a * (1 + 1e-9) for a, b in zip(residuals, residuals[1:])), residuals
    yield from comm.finalize()
    return residuals[-1]
