"""Multi-tenant service scenario: N tenants, one hub, seeded preemption.

The measured workload is the service's worst case: every running tenant
checkpoints at the same epoch tick (a synchronized storm), so the hub
absorbs tenants x ranks control messages per barrier wave.  The same
(seed, schedule) pair is run once with the batched dispatcher and once
with per-message dispatch; the p99 checkpoint latency ratio between the
two is the batching win the bench gates on.

The hardware spec is tuned towards *service* tenants -- many small jobs
whose checkpoint cost is coordinator traffic, not image I/O: quiesce,
drain-poll, and per-file-op latencies are shrunk so the protocol waves
dominate.  The tuning is symmetric across the two modes (same spec,
same seed), so the ratio compares dispatchers, nothing else.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cluster import build_cluster
from repro.config import CLUSTER_2008, HardwareSpec
from repro.service import ClusterScheduler, CoordinatorHub, TenantRegistry

__all__ = ["service_spec", "run_service_point", "run_service_comparison"]


def service_spec(base: Optional[HardwareSpec] = None) -> HardwareSpec:
    """The many-small-tenants calibration (see module docstring)."""
    base = base or CLUSTER_2008
    return base.with_(
        # service nodes are denser and faster than the 2008 testbed:
        # more cores per host, quicker quiesce, cheap syscalls
        cpu=replace(base.cpu, cores=8),
        os=replace(base.os, suspend_quiesce_s=1e-4, syscall_s=0.4e-6),
        dmtcp=replace(base.dmtcp, drain_poll_s=2e-4),
        # ...and write their (tiny) images to fast local storage; image
        # I/O must not drown the coordinator traffic being compared
        disk=replace(base.disk, op_latency_s=5e-5, disk_bps=1e9),
    )


def run_service_point(
    tenants: int = 8,
    ranks: int = 4,
    interval_s: float = 1.0,
    duration_s: float = 6.0,
    seed: int = 0,
    batched: bool = True,
    evictions: int = 0,
    spare_hosts: int = 2,
    spec: Optional[HardwareSpec] = None,
) -> dict:
    """One service run: seeded arrivals, synchronized checkpoint storms,
    optional spot-eviction waves.  Returns the scheduler report plus the
    world's sanity counters -- virtual-time quantities only, so the same
    inputs produce byte-identical JSON."""
    spec = spec or service_spec()
    n_nodes = 1 + tenants + spare_hosts  # head node + 1 host/tenant + spares
    world = build_cluster(n_nodes=n_nodes, spec=spec, seed=seed)
    hub = CoordinatorHub(world, batched=batched)
    registry = TenantRegistry(world, hub)
    scheduler = ClusterScheduler(
        world,
        registry,
        hub,
        worker_hosts=world.machine.hostnames[1:],
        seed=seed,
        interval_s=interval_s,
    )
    # long-lived tenants: jobs outlast the horizon so the storm
    # population stays at full strength for every epoch
    slices = int(2 * duration_s / 0.05) + 100
    scheduler.generate_arrivals(
        tenants,
        mean_interarrival_s=0.02,
        slots_choices=(ranks,),
        slices=slices,
    )
    # eviction waves land between storms, spread across the middle of
    # the run (never in the warm-up before the first checkpoint exists)
    for i in range(evictions):
        at_t = interval_s * (1.5 + i * max(1, (duration_s / interval_s - 2) // max(1, evictions)))
        scheduler.schedule_eviction(at_t)
    scheduler.start()
    world.engine.run(until=duration_s)
    scheduler.stop()
    report = scheduler.report()
    report["tenants"] = tenants
    report["ranks"] = ranks
    report["interval_s"] = interval_s
    report["duration_s"] = duration_s
    report["seed"] = seed
    report["events"] = world.engine.events_fired
    return report


def run_service_comparison(
    tenants: int = 8,
    ranks: int = 4,
    interval_s: float = 1.0,
    duration_s: float = 6.0,
    seed: int = 0,
    evictions: int = 0,
) -> dict:
    """The gate measurement: same workload under both dispatchers.

    ``p99_ratio`` is per-message p99 checkpoint latency divided by
    batched p99 -- the factor the batched protocol wins by.
    """
    batched = run_service_point(
        tenants=tenants, ranks=ranks, interval_s=interval_s,
        duration_s=duration_s, seed=seed, batched=True, evictions=evictions,
    )
    per_message = run_service_point(
        tenants=tenants, ranks=ranks, interval_s=interval_s,
        duration_s=duration_s, seed=seed, batched=False, evictions=evictions,
    )
    ratio = (
        per_message["ckpt_latency_p99_s"] / batched["ckpt_latency_p99_s"]
        if batched["ckpt_latency_p99_s"] > 0
        else 0.0
    )
    return {
        "tenants": tenants,
        "ranks": ranks,
        "seed": seed,
        "batched": batched,
        "per_message": per_message,
        "p99_ratio": round(ratio, 3),
    }
