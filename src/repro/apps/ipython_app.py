"""iPython workloads (Figure 4, applications marked [1]: raw sockets).

* ``ipython_shell`` -- "the interactive iPython interpreter, idle at
  time of checkpoint": one process with an interpreter-sized footprint
  and a pty.
* ``ipython_demo`` -- "the 'parallel computing' demo included with the
  iPython tutorial": an ipcontroller process plus one ipengine per node,
  connected with plain TCP sockets (no MPI), running a scatter/compute/
  gather loop.  This is the paper's example of "a custom sockets
  package" that MPI-specific checkpointers cannot handle.
"""

from __future__ import annotations

from repro.core import protocol as P
from repro.kernel.process import ProgramSpec, RegionSpec
from repro.kernel.streams import FrameAssembler
from repro.kernel.syscalls import connect_retry, recv_frame, send_frame

MB = 2**20

SHELL_SPEC = ProgramSpec(
    "ipython_shell",
    regions=(
        RegionSpec("code", 6 * MB, "code"),
        RegionSpec("heap", 14 * MB, "text"),
        RegionSpec("anon", 4 * MB, "zero"),
    ),
)
CONTROLLER_SPEC = ProgramSpec(
    "ipcontroller",
    regions=(
        RegionSpec("code", 6 * MB, "code"),
        RegionSpec("heap", 18 * MB, "text"),
    ),
)
ENGINE_SPEC = ProgramSpec(
    "ipengine",
    regions=(
        RegionSpec("code", 6 * MB, "code"),
        RegionSpec("heap", 12 * MB, "text"),
        RegionSpec("heap", 20 * MB, "numeric"),
    ),
)

CONTROLLER_PORT = 10101


def ipython_shell_main(sys, argv):
    """Idle interactive shell (checkpointed while waiting at the prompt)."""
    master, slave = yield from sys.openpty()
    yield from sys.setsid()
    yield from sys.setctty(slave)
    while True:
        yield from sys.sleep(0.3)
        yield from sys.send(master, 4, data=b"\n")
        yield from sys.recv(slave)


def ipcontroller_main(sys, argv):
    """argv: ipcontroller <n_engines>"""
    import numpy as np

    n_engines = int(argv[1])
    lfd = yield from sys.socket()
    yield from sys.bind(lfd, CONTROLLER_PORT)
    yield from sys.listen(lfd, backlog=n_engines + 2)
    engines = []
    asms = {}
    for _ in range(n_engines):
        fd = yield from sys.accept(lfd)
        engines.append(fd)
        asms[fd] = FrameAssembler()
    rng = sys_rng = np.random.default_rng(7)
    # the tutorial demo: repeatedly scatter work, engines compute, gather
    iteration = 0
    while True:
        data = rng.random(64)
        for i, fd in enumerate(engines):
            yield from send_frame(sys, fd, ("task", iteration, data[i::n_engines]), 96 * 1024)
        results = []
        for fd in engines:
            result = yield from recv_frame(sys, fd, asms[fd])
            results.append(result[0][1])
        assert len(results) == n_engines
        iteration += 1
        yield from sys.sleep(0.1)


def ipengine_main(sys, argv):
    """argv: ipengine <controller_host>"""
    controller = argv[1]
    fd = yield from sys.socket()
    yield from connect_retry(sys, fd, controller, CONTROLLER_PORT)
    asm = FrameAssembler()
    while True:
        task = yield from recv_frame(sys, fd, asm)
        if task is None:
            return
        _tag, iteration, data = task[0]
        yield from sys.cpu(0.02)
        yield from send_frame(sys, fd, ("result", float(data.sum())), 8 * 1024)


def ipython_demo_launcher_main(sys, argv):
    """argv: ipython_demo <n_engines> -- starts controller + engines."""
    n_engines = int(argv[1])
    hosts = yield from sys.nodes()
    yield from sys.spawn("ipcontroller", ["ipcontroller", str(n_engines)])
    my_host = yield from sys.gethostname()
    for i in range(n_engines):
        target = hosts[i % len(hosts)]
        eng_argv = ["ipengine", my_host]
        if target == my_host:
            yield from sys.spawn("ipengine", eng_argv)
        else:
            yield from sys.ssh(target, "ipengine", eng_argv)
    while True:  # keep the session alive (like the user's foreground shell)
        yield from sys.sleep(1.0)


def register_ipython(world) -> None:
    """Register the iPython shell/controller/engine/demo programs."""
    world.register_program("ipython_shell", ipython_shell_main, SHELL_SPEC)
    world.register_program("ipcontroller", ipcontroller_main, CONTROLLER_SPEC)
    world.register_program("ipengine", ipengine_main, ENGINE_SPEC)
    world.register_program("ipython_demo", ipython_demo_launcher_main, SHELL_SPEC)
