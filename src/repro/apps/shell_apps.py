"""Generic desktop-application driver for the Figure 3 suite.

Every profile becomes a registered program: it acquires a pty (its
controlling terminal), maps its calibrated memory, forks its helper
processes (window manager, cscope, ...) connected by unix socketpairs or
pipes, starts its worker threads, and then behaves like an interactive
application: short CPU bursts, terminal echo traffic, and periodic
memory churn.  DMTCP sees exactly what it would see on a real desktop.
"""

from __future__ import annotations

from repro.apps.profiles import APP_PROFILES, AppProfile
from repro.kernel.process import ProgramSpec, RegionSpec
from repro.kernel.world import World


def _program_name(app_name: str) -> str:
    return "app_" + app_name.replace("/", "_").replace("+", "_")


def _minimal_spec(name: str) -> ProgramSpec:
    # the exec-time image is tiny; the app maps its real footprint itself
    return ProgramSpec(name, regions=(RegionSpec("code", 64 * 1024, "code"),))


def _map_profile_regions(sys, regions):
    for kind, size, profile in regions:
        if kind == "anon":
            yield from sys.mmap(size, profile, kind="anon")
        else:
            yield from sys.sbrk(size, profile)


def _helper_body(sys, regions, link_fd):
    yield from _map_profile_regions(sys, regions)
    while True:
        # helpers wait on their IPC link and do a little work per event
        chunk = yield from sys.recv(link_fd)
        if chunk is None:
            yield from sys.exit(0)
        yield from sys.cpu(0.002)
        yield from sys.send(link_fd, 64, data=b"ack")


def _worker_thread(sys):
    while True:
        yield from sys.sleep(0.5)
        yield from sys.cpu(0.003)


def make_shell_app(profile: AppProfile):
    """Build the main generator for one desktop application."""

    def app_main(sys, argv):
        # interactive session: own pty, own session
        master = slave = None
        if profile.pty:
            master, slave = yield from sys.openpty()
            yield from sys.setsid()
            yield from sys.setctty(slave)

        yield from _map_profile_regions(sys, profile.regions)

        helper_fds = []
        for helper_regions in profile.helpers:
            if profile.helper_link == "pipe":
                theirs_r, mine_w = yield from sys.pipe()
                mine_r, theirs_w = yield from sys.pipe()

                def helper_main(hsys, regions=helper_regions, rfd=theirs_r, wfd=theirs_w):
                    yield from _map_profile_regions(hsys, regions)
                    while True:
                        chunk = yield from hsys.recv(rfd)
                        if chunk is None:
                            yield from hsys.exit(0)
                        yield from hsys.cpu(0.002)
                        yield from hsys.send(wfd, 64, data=b"ack")

                yield from sys.fork(helper_main)
                helper_fds.append((mine_w, mine_r))
            else:
                mine, theirs = yield from sys.socketpair()

                def helper_main(hsys, regions=helper_regions, fd=theirs):
                    yield from _helper_body(hsys, regions, fd)

                yield from sys.fork(helper_main)
                yield from sys.close(theirs)
                helper_fds.append((mine, mine))

        for _ in range(profile.threads):
            yield from sys.thread_create(_worker_thread)

        # interactive steady state
        beat = 0
        while True:
            yield from sys.sleep(0.25)
            yield from sys.cpu(0.004)
            beat += 1
            if profile.pty and beat % 4 == 0:
                # keystroke echo through the terminal
                yield from sys.send(master, 8, data=b"input\n")
                yield from sys.recv(slave)
                yield from sys.send(slave, 16, data=b"output")
                yield from sys.recv(master)
            if helper_fds and beat % 5 == 0:
                for wfd, rfd in helper_fds:
                    yield from sys.send(wfd, 128, data=b"request")
                    yield from sys.recv(rfd)

    return app_main


def register_shell_apps(world: World) -> None:
    """Register every Figure 3 application with a world."""
    for name, profile in APP_PROFILES.items():
        prog = _program_name(name)
        world.register_program(prog, make_shell_app(profile), _minimal_spec(prog))


def program_for(app_name: str) -> str:
    """Program name registered for a Figure 3 application."""
    if app_name not in APP_PROFILES:
        raise KeyError(f"unknown Figure 3 app {app_name!r}")
    return _program_name(app_name)
