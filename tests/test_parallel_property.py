"""Property battery: shard count is observationally invisible.

For randomized memberships, per-process work patterns, and seeds, the
same SPMD scenario run at ``shards in {1, 2, 4}`` (inline backend) must
produce

* the identical per-node firing order -- each node's sequence of
  ``(virtual time, pid, iteration)`` work events, in the order its
  engine fired them;
* byte-identical checkpoint artifacts (image checksums and the barrier
  release sequence from a full DMTCP checkpoint);
* the identical total number of engine events fired, summed over
  shards (the replicated worlds schedule nothing globally -- every
  event belongs to exactly one owned node).

Mirrors ``test_coord_tree_property``: that battery shows the tree
transport is invisible; this one shows the *partition* is.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation
from repro.sim.parallel import run_sharded

#: Each example runs three full sharded simulations; keep the budget in
#: membership diversity, not example count (same rationale as the tree
#: property battery).
EXAMPLES = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: membership: 2-5 nodes, 0-3 app processes each, at least one app
memberships = st.lists(
    st.integers(min_value=0, max_value=3), min_size=2, max_size=5
).filter(lambda counts: sum(counts) >= 1)
seeds = st.integers(min_value=0, max_value=2**16)


def _scenario(ctx, counts, seed, checkpoint):
    """One SPMD replica: random sleep/cpu mix, optional DMTCP checkpoint.

    Returns (per-node firing log, root artifacts | None).  Only owned
    nodes run events, so each shard's log covers exactly its block.
    """
    world = build_cluster(n_nodes=len(counts), seed=seed)
    ctx.bind(world)
    log = []

    def app(sys, argv):
        host, pid_s, period_s = argv[1], argv[2], argv[3]
        period = float(period_s)
        i = 0
        while True:  # long-lived: still a member when the checkpoint lands
            # alternate timer and cpu events so the heap sees both kinds
            if i % 2:
                yield from sys.cpu(period / 3)
            else:
                yield from sys.sleep(period)
            if i < 6:
                t = yield from sys.time()
                log.append((host, t, int(pid_s), i))
            i += 1

    world.register_program("app", app)
    comp = DmtcpComputation(world, compression=True, sim_shards=ctx.n_shards)
    hostnames = world.machine.hostnames
    serial = 0
    for host, n in zip(hostnames, counts):
        for _ in range(n):
            # period varies per process but is identical across shard
            # counts: derived only from (seed, spawn serial number)
            period = 0.01 + ((seed + 7 * serial) % 5) * 0.003
            comp.launch(host, "app", ["app", host, str(serial), str(period)])
            serial += 1
    world.engine.run(until=0.1)
    artifacts = None
    if checkpoint:
        outcome = comp.checkpoint()
        if outcome is not None:
            artifacts = {
                "checksums": sorted(
                    f"{r.ckpt_id}:{r.hostname}:{r.vpid}:{r.program}:"
                    f"{r.image_bytes}:{r.stored_bytes}"
                    for r in outcome.records
                ),
                "releases": [
                    (s["name"], s["n"]) for s in comp.state.barrier_stats
                ],
            }
    else:
        world.engine.run(until=0.2)
    assert not world.scheduler.failures, world.scheduler.failures
    by_node: dict = {}
    for host, t, pid, i in log:
        by_node.setdefault(host, []).append((t, pid, i))
    return by_node, artifacts


def _merged(result):
    """Combine per-shard returns: node logs (disjoint), root artifacts,
    total events fired."""
    nodes: dict = {}
    artifacts = None
    for value in result.values:
        by_node, arts = value
        assert not (set(nodes) & set(by_node))  # ownership is a partition
        nodes.update(by_node)
        if arts is not None:
            assert artifacts is None  # exactly one shard owns the coordinator
            artifacts = arts
    events = sum(s["events_fired"] for s in result.stats)
    return nodes, artifacts, events


def _assert_invariant(counts, seed, checkpoint):
    base = None
    for n in (1, 2, 4):
        result = run_sharded(
            _scenario, n, counts, seed, checkpoint, backend="inline", timeout_s=120
        )
        merged = _merged(result)
        if base is None:
            base = merged
            nodes, artifacts, _ = merged
            assert sum(len(v) for v in nodes.values()) == sum(counts) * 6
            if checkpoint:
                assert artifacts is not None and len(artifacts["checksums"]) == sum(
                    counts
                )
        else:
            assert merged[0] == base[0], f"firing order diverged at shards={n}"
            assert merged[1] == base[1], f"artifacts diverged at shards={n}"
            assert merged[2] == base[2], f"events_fired diverged at shards={n}"


@EXAMPLES
@given(counts=memberships, seed=seeds)
def test_property_firing_order_invariant(counts, seed):
    """Random task graphs fire identically at every shard count."""
    _assert_invariant(counts, seed, checkpoint=False)


@EXAMPLES
@given(counts=memberships, seed=seeds)
def test_property_checkpoint_artifacts_invariant(counts, seed):
    """A full DMTCP checkpoint commits identical artifacts at every
    shard count: image checksums and barrier release sequence."""
    _assert_invariant(counts, seed, checkpoint=True)


def test_property_single_node_degenerate():
    """One node, several processes: every shard count collapses to one
    working shard plus idle replicas, and nothing diverges."""
    _assert_invariant([3], seed=5, checkpoint=True)
