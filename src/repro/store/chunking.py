"""Chunking and content identity for the checkpoint image store.

A checkpoint image payload is split into fixed-size chunks that never
span a region boundary (each memory region is chunked independently, so
a region's chunk set is stable however its neighbours change).  Chunks
are keyed by a deterministic content digest derived from the simulation's
content ontology: the simulator carries no literal page bytes, so two
chunks are *defined* to hold identical bytes exactly when

* they belong to regions with the same :attr:`MemoryRegion.content_key`
  (same program, same allocation ordinal, same kind/profile/size --
  e.g. the physics tables every ParGeant4 rank builds at init), and
* they cover the same chunk index at the same write generation.

Generation 0 is the freshly-initialized content every rank shares, so
gen-0 digests dedup across processes.  Once a region has actually been
written (:attr:`MemoryRegion.written` -- creation-dirtiness alone does
not count), each store-mode checkpoint bumps the generations of the
dirty chunk prefix; bumped digests are additionally keyed on the
region's private lineage (its ``region_id``, preserved across restarts),
because two ranks writing "the same" region diverge in content even
though they started identical.  Unchanged chunks keep their digests, so
successive checkpoint generations dedup against each other -- the
incremental-delta win without parent-image chains.
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple


class ChunkRef(NamedTuple):
    """One manifest entry: a content-addressed slice of a region."""

    digest: str
    nbytes: int
    profile: str


def chunk_layout(size: int, chunk_bytes: int) -> list[int]:
    """Chunk sizes covering ``size`` bytes (last chunk may be short)."""
    if size <= 0:
        return []
    n_full, tail = divmod(size, chunk_bytes)
    return [chunk_bytes] * n_full + ([tail] if tail else [])


def chunk_digest(
    content_key: str,
    region_id: int,
    index: int,
    gen: int,
    nbytes: int,
    profile: str,
) -> str:
    """Deterministic content hash of one chunk.

    Gen 0 hashes only the shared content key (cross-rank dedup); gen > 0
    mixes in the region's private lineage so diverged writers cannot
    collide on "generation 2 of chunk 3" while holding different bytes.
    """
    lineage = content_key if gen == 0 else f"{content_key}#{region_id}"
    raw = f"{lineage}|{index}|{gen}|{nbytes}|{profile}".encode()
    return hashlib.blake2b(raw, digest_size=16).hexdigest()


def region_chunks(
    content_key: str,
    region_id: int,
    size: int,
    profile: str,
    chunk_gens: dict[int, int],
    chunk_bytes: int,
) -> list[ChunkRef]:
    """The chunk manifest of one region at its current generations."""
    refs = []
    for index, nbytes in enumerate(chunk_layout(size, chunk_bytes)):
        gen = chunk_gens.get(index, 0)
        refs.append(
            ChunkRef(
                chunk_digest(content_key, region_id, index, gen, nbytes, profile),
                nbytes,
                profile,
            )
        )
    return refs


def dirty_chunk_count(size: int, dirty_fraction: float, chunk_bytes: int) -> int:
    """How many chunks the region's dirty fraction touches (a prefix).

    The simulation tracks dirtiness as a fraction, not a page bitmap, so
    the dirty set is modeled as a deterministic prefix of the chunk list.
    """
    n = len(chunk_layout(size, chunk_bytes))
    if n == 0 or dirty_fraction <= 0.0:
        return 0
    return min(n, -(-int(round(dirty_fraction * n * 1e9)) // 10**9))


def advance_generations(region, chunk_bytes: int) -> int:
    """Bump the dirty-prefix generations of a written region.

    Called once per store-mode checkpoint (the caller guards shared
    regions against double bumps).  Returns the number of chunks bumped.
    """
    ndirty = dirty_chunk_count(region.size, region.dirty_fraction, chunk_bytes)
    for index in range(ndirty):
        region.chunk_gens[index] = region.chunk_gens.get(index, 0) + 1
    return ndirty
