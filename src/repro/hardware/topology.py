"""Cluster assembly: nodes + network + optional centralized storage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.config import HardwareSpec
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

from repro.hardware.network import Network
from repro.hardware.node import Node
from repro.hardware.storage import SanDevice


@dataclass
class Machine:
    """The physical plant handed to the kernel layer."""

    engine: Engine
    spec: HardwareSpec
    network: Network
    nodes: list[Node] = field(default_factory=list)
    san: Optional[SanDevice] = None

    def node(self, hostname: str) -> Node:
        """Look a node up by hostname."""
        return self.network.node(hostname)

    @property
    def hostnames(self) -> list[str]:
        """All node hostnames, in id order."""
        return [n.hostname for n in self.nodes]


def build_machine(
    engine: Engine,
    spec: HardwareSpec,
    n_nodes: int,
    rng: Optional[RandomStreams] = None,
    with_san: bool = False,
    hostname_prefix: str = "node",
    hostnames: Optional[Sequence[str]] = None,
) -> Machine:
    """Build an ``n_nodes`` cluster per the calibration ``spec``.

    With ``with_san`` the paper's Figure 5b storage layout is attached:
    the first ``spec.san.san_clients`` nodes mount the device over Fibre
    Channel, the rest reach it via NFS.

    ``hostnames`` overrides the dense ``{prefix}{i:02d}`` naming with an
    explicit machine file -- e.g. a sparse membership like
    ``["node00", "node02", "node05"]``.  ``node_id`` stays the position
    in the machine file (a dense rank), never a number parsed out of the
    hostname; everything identity-bearing keys on the hostname itself.
    """
    rng = rng or RandomStreams(0)
    if hostnames is not None:
        hostnames = list(hostnames)
        if len(hostnames) != n_nodes:
            raise ValueError(
                f"hostnames has {len(hostnames)} entries for n_nodes={n_nodes}"
            )
        if len(set(hostnames)) != len(hostnames):
            raise ValueError("duplicate hostnames in machine file")
    network = Network(engine, spec.network)
    machine = Machine(engine=engine, spec=spec, network=network)
    if with_san:
        machine.san = SanDevice(engine, spec.san, spec.network)
    for i in range(n_nodes):
        hostname = (
            hostnames[i] if hostnames is not None else f"{hostname_prefix}{i:02d}"
        )
        node = Node(engine, hostname, spec, rng.fork(hostname), node_id=i)
        network.attach(node)
        machine.nodes.append(node)
        if machine.san is not None:
            node.san = machine.san
            node.san_path = "fc" if i < spec.san.san_clients else "nfs"
    return machine
