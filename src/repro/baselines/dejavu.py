"""A DejaVu-style transparent checkpointer (Ruscio et al., IPDPS 2007).

Section 2: "DejaVu takes a more invasive approach than DMTCP, by logging
all communication and by using page protection to detect modification of
memory pages between checkpoints.  This accounts for additional overhead
during normal program execution that is not present in DMTCP."  On the
Chombo benchmark they report ~45% overhead at ten checkpoints per hour.

The model charges exactly those two taxes while the application runs:

* every ``send``/``send_chunk`` is copied into an in-memory log and
  asynchronously appended to disk (per-byte CPU cost + disk traffic);
* every page dirtied after a checkpoint takes a write-protection fault
  (per-page cost, charged through ``mem_touch``/``sbrk``/``mmap``).

Its upside is also modelled: checkpoints are *incremental* -- only pages
dirtied since the previous checkpoint are written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.syscalls import Sys
from repro.kernel.world import World
from repro.sim.tasks import TaskState

DEJAVU_ENV = "DEJAVU_CKPT"

#: Cost of one write-protection fault + SIGSEGV handler round trip.
FAULT_COST_S = 20e-6
#: Per-byte cost of copying sent data into the message log.
LOG_COPY_BPS = 400e6
PAGE = 4096


@dataclass
class DejavuStats:
    """Per-process tally of the checkpointer's runtime taxes."""

    faults: int = 0
    logged_bytes: float = 0.0
    overhead_seconds: float = 0.0
    checkpoints: list = field(default_factory=list)  # (time, bytes_written)


class DejavuSys(Sys):
    """Interposer charging logging + fault-tracking taxes."""

    def __init__(self, raw: Sys, world: World, process, stats: DejavuStats):
        self.raw = raw
        self.world = world
        self.process = process
        self.stats = stats

    def _charge(self, seconds: float):
        self.stats.overhead_seconds += seconds
        return self.raw.cpu(seconds)

    # -- page-protection tracking --------------------------------------
    def _fault_cost(self, nbytes: float, fraction: float = 1.0) -> float:
        pages = max(int(nbytes * fraction / PAGE), 1)
        self.stats.faults += pages
        return pages * FAULT_COST_S

    def sbrk(self, nbytes, profile="text"):
        """sbrk wrapper: new pages start write-protected (fault cost)."""
        rid = yield from self.raw.sbrk(nbytes, profile)
        yield from self._charge(self._fault_cost(nbytes))
        return rid

    def mmap(self, size, profile="zero", shared=False, path=None, kind="anon"):
        """mmap wrapper: new mappings start write-protected."""
        rid = yield from self.raw.mmap(size, profile, shared, path, kind)
        yield from self._charge(self._fault_cost(size))
        return rid

    def mem_touch(self, region_id, fraction=1.0):
        """mem_touch wrapper: each dirtied page takes a protection fault."""
        result = yield from self.raw.mem_touch(region_id, fraction)
        region = self.process.address_space.find(region_id)
        yield from self._charge(self._fault_cost(region.size, fraction))
        return result

    # -- message logging -------------------------------------------------
    def _log_send(self, nbytes: int):
        self.stats.logged_bytes += nbytes
        yield from self._charge(nbytes / LOG_COPY_BPS)
        # async append to the local log file; contends with checkpoints
        self.process.node.disk.write(nbytes)

    def send(self, fd, nbytes, data=None, ctrl=None):
        """send wrapper: the message is copied into the log first."""
        yield from self._log_send(nbytes)
        return (yield from self.raw.send(fd, nbytes, data, ctrl))

    def send_chunk(self, fd, chunk, force=False):
        """send_chunk wrapper: logged like send."""
        yield from self._log_send(chunk.nbytes)
        return (yield from self.raw.send_chunk(fd, chunk, force))


class DejavuComputation:
    """Host-side driver for DejaVu-checkpointed programs."""

    def __init__(self, world: World):
        self.world = world
        self.stats_by_pid: dict[int, DejavuStats] = {}
        world.interpose_factories[DEJAVU_ENV] = self._factory
        self.processes: list = []

    def _factory(self, world: World, process, base: Sys) -> Sys:
        stats = DejavuStats()
        self.stats_by_pid[process.pid] = stats
        process.user_state["dejavu_stats"] = stats
        return DejavuSys(base, world, process, stats)

    def launch(self, hostname: str, program: str, argv: Optional[list] = None, env: Optional[dict] = None):
        """Run a program under the DejaVu-style checkpointer."""
        merged = {DEJAVU_ENV: "1"}
        merged.update(env or {})
        proc = self.world.spawn_process(hostname, program, argv or [program], merged)
        self.processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    def checkpoint(self) -> float:
        """Coordinated incremental checkpoint of every DejaVu process.

        Suspends everything, writes only the pages dirtied since the last
        checkpoint, resumes.  Returns the checkpoint duration.
        """
        t0 = self.world.engine.now
        victims = [p for p in self.world.live_processes() if p.env.get(DEJAVU_ENV)]
        frozen = []
        writes = []
        for proc in victims:
            for thread in proc.user_threads:
                task = thread.task
                if task is not None and not task.done and task.state is not TaskState.FROZEN:
                    task.freeze()
                    frozen.append(task)
            dirty = sum(r.size * r.dirty_fraction for r in proc.address_space.regions)
            for region in proc.address_space.regions:
                region.clean()  # re-protect pages
            stats = proc.user_state.get("dejavu_stats")
            if stats is not None:
                stats.checkpoints.append((t0, dirty))
            writes.append(proc.node.disk.write(dirty))
        done = {"n": 0}
        for w in writes:
            w.add_done(lambda: done.__setitem__("n", done["n"] + 1))
        self.world.engine.run_until(lambda: done["n"] == len(writes))
        for task in frozen:
            if not task.done:
                task.thaw()
        return self.world.engine.now - t0

    def total_overhead_seconds(self) -> float:
        """CPU seconds charged to logging + fault tracking so far."""
        return sum(s.overhead_seconds for s in self.stats_by_pid.values())
