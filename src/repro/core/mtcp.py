"""MTCP: the single-process checkpoint layer (Section 4.1, layer 2).

DMTCP delegates per-process work to MTCP across a small API: build an
image of user-space memory (discovered via the /proc maps rendering),
stream it through gzip to disk, and at restart rebuild memory and threads
so the process resumes at Barrier 5 of the checkpoint algorithm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import compression
from repro.core.imagefile import (
    CheckpointImage,
    FdImage,
    RegionImage,
    ThreadImage,
    conn_key,
)
from repro.errors import SyscallError
from repro.kernel.filesystem import OpenFile
from repro.kernel.sockets import ListenerSocket, SocketEndpoint
from repro.kernel.syscalls import Sys

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hijack import DmtcpRuntime

#: Fixed metadata overhead per image (headers, tables), bytes.
METADATA_BYTES = 64 * 1024


def endpoint_dead(desc) -> bool:
    """Has the remote side of this endpoint already gone away?"""
    return (
        desc.closed
        or desc.peer is None
        or desc.peer.closed
        or desc.rx.eof
        or desc.rx._eof_pending
    )


def image_path(runtime: "DmtcpRuntime") -> str:
    """Image filename, unique cluster-wide.

    Real DMTCP names images ``ckpt_<program>_<UniquePid>.dmtcp`` where
    UniquePid is (hostid, pid, timestamp) -- vital when the checkpoint
    directory is shared storage, where same-pid processes on different
    hosts would otherwise overwrite each other's images.
    """
    ckpt_dir = runtime.process.env.get("DMTCP_CKPT_DIR", "/tmp/dmtcp")
    host = runtime.process.node.hostname
    stamp = f"{runtime.process.start_time:.6f}".replace(".", "")
    return f"{ckpt_dir}/ckpt_{runtime.process.program}_{host}-{runtime.vpid}-{stamp}.dmtcp"


def build_image(runtime: "DmtcpRuntime", ckpt_id: int, drained: dict[int, list]) -> CheckpointImage:
    """Snapshot the process: memory map, threads, FD table, connections."""
    process = runtime.process
    regions = [
        RegionImage(r.kind, r.size, r.profile.name, r.path, r.shared)
        for r in process.address_space.regions
    ]
    threads = [
        ThreadImage(t.name, t.task)
        for t in process.threads
        if t.kind == "user" and t.task is not None and not t.task.done
    ]
    fds = []
    for fd_num in sorted(process.fds):
        entry = process.fds[fd_num]
        desc = entry.description
        info = runtime.conn_table.get(fd_num)
        if isinstance(desc, OpenFile):
            fds.append(
                FdImage(
                    fd=fd_num,
                    kind="file",
                    cloexec=entry.cloexec,
                    path=desc.file.path,
                    offset=desc.offset,
                    flags=desc.flags,
                    desc_key=id(desc),
                )
            )
        elif isinstance(desc, ListenerSocket):
            fds.append(
                FdImage(
                    fd=fd_num,
                    kind="listener",
                    cloexec=entry.cloexec,
                    conn_key=conn_key(info.conn_id) if info and info.conn_id else None,
                    bound_port=desc.addr[1] if desc.addr else None,
                    bound_path=desc.path,
                    owner_vpid=desc.owner_pid,
                    desc_key=id(desc),
                )
            )
        elif isinstance(desc, SocketEndpoint):
            if info is None or info.conn_id is None:
                continue  # raw unconnected socket; nothing to restore
            fds.append(
                FdImage(
                    fd=fd_num,
                    kind="pty" if desc.domain == "pty" else "socket",
                    cloexec=entry.cloexec,
                    conn_key=conn_key(info.conn_id),
                    role=info.role,
                    pty_name=info.pty_name,
                    pty_side=info.pty_side,
                    termios=(
                        dict(desc.pty.termios) if getattr(desc, "pty", None) else None
                    ),
                    owner_vpid=desc.owner_pid,
                    peer_dead=endpoint_dead(desc),
                    desc_key=id(desc),
                )
            )
    connections = {
        conn_key(info.conn_id): info.clone()
        for _fd, info in runtime.conn_table.items()
        if info.conn_id is not None
    }
    parent_rt = None
    if process.parent is not None:
        parent_rt = process.parent.user_state.get("dmtcp")
    image = CheckpointImage(
        ckpt_id=ckpt_id,
        hostname=process.node.hostname,
        vpid=runtime.vpid,
        program=process.program,
        argv=list(process.argv),
        env=dict(process.env),
        regions=regions,
        threads=threads,
        fds=fds,
        connections=connections,
        drained=dict(drained),
        pid_map=dict(runtime.pids.v2r),
        parent_vpid=parent_rt.vpid if parent_rt else 0,
        sid_vpid=process.sid,
        ctty_name=process.ctty.name if process.ctty else None,
        termios=dict(process.ctty.termios) if process.ctty else None,
        signal_handlers=dict(process.signal_handlers),
        sys_ref=runtime.sys,
    )
    from repro.core.export import capture_app_state

    image.app_state = capture_app_state(process)
    compressed = runtime.process.env.get("DMTCP_GZIP", "1") == "1"
    est = compression.estimate(
        [(r.size, r.profile) for r in regions],
        runtime.world.spec.cpu,
        enabled=compressed,
    )
    image.compressed = compressed
    image.image_bytes = est.input_bytes + METADATA_BYTES
    image.stored_bytes = est.output_bytes + METADATA_BYTES
    return image


def write_image(sys: Sys, runtime: "DmtcpRuntime", image: CheckpointImage, path: str):
    """Stage 5: stream user-space memory through gzip to the image file.

    Runs on its own tracer track (``<host>/mtcp[<vpid>]``): with forked
    checkpointing the COW child writes in the background while the parent
    proceeds, so the write span must not nest inside the parent's stage
    spans.
    """
    world = runtime.world
    tracer = world.tracer
    track = f"{image.hostname}/mtcp[{image.vpid}]"
    tracer.begin(track, "mtcp.write", cat="mtcp", path=path)
    est = compression.estimate(
        [(r.size, r.profile) for r in image.regions],
        runtime.world.spec.cpu,
        enabled=image.compressed,
    )
    if est.compress_seconds > 0:
        yield from sys.cpu(est.compress_seconds)
    fd = yield from sys.open(path, "w")
    yield from sys.write(fd, image.stored_bytes, payload=image)
    yield from sys.close(fd)
    tracer.end(track, "mtcp.write", cat="mtcp")
    if tracer.enabled:
        page_bytes = world.spec.os.page_bytes
        tracer.count("mtcp.images_written")
        tracer.count("mtcp.image_bytes", image.image_bytes)
        tracer.count("mtcp.stored_bytes", image.stored_bytes)
        tracer.count("mtcp.pages_written", -(-image.stored_bytes // page_bytes))
        tracer.instant(
            track,
            "mtcp.compression",
            cat="mtcp",
            compressed=image.compressed,
            image_bytes=image.image_bytes,
            stored_bytes=image.stored_bytes,
            ratio=round(image.stored_bytes / max(image.image_bytes, 1), 6),
        )


def read_image(sys: Sys, path: str):
    """Restart step 0: pull the image file back off storage."""
    fd = yield from sys.open(path, "r")
    nbytes, payload = yield from sys.read(fd, 1 << 62)
    yield from sys.close(fd)
    if payload is None:
        raise SyscallError("EIO", f"no checkpoint payload in {path}")
    return payload


def restore_memory(sys: Sys, world, process, image: CheckpointImage):
    """Restart step 5a: rebuild the address space from the region table.

    Private regions are re-mapped directly; shared (mmap-backed) regions
    go through the mmap syscall so the paper's backing-file rules apply
    (Section 4.5: recreate the file if missing and writable, overwrite if
    writable, else map file contents as-is).
    """
    est = compression.estimate(
        [(r.size, r.profile) for r in image.regions],
        world.spec.cpu,
        enabled=image.compressed,
    )
    # gunzip plus page instantiation: copying image bytes into fresh
    # mappings and faulting them in (Table 1b's dominant restore cost)
    instantiate = est.input_bytes / world.spec.os.page_restore_bps
    if est.decompress_seconds + instantiate > 0:
        yield from sys.cpu(est.decompress_seconds + instantiate)
    from repro.kernel.memory import AddressSpace, PROFILES

    space = AddressSpace(world.spec.os.page_bytes)
    process.address_space = space
    for region in image.regions:
        if region.shared and region.path is not None:
            yield from _restore_shared_region(sys, process, region)
        else:
            space.map_region(
                region.size, region.kind, PROFILES[region.profile], path=region.path
            )


def _restore_shared_region(sys: Sys, process, region: RegionImage):
    """Apply the Section 4.5 shared-memory rules for one segment."""
    st = yield from sys.stat(region.path)
    if st is None:
        # backing file missing: recreate it, then map and overwrite
        fd = yield from sys.open(region.path, "w")
        yield from sys.write(fd, region.size)
        yield from sys.close(fd)
    yield from sys.mmap(
        region.size, region.profile, shared=True, path=region.path, kind="shm"
    )


def adopt_threads(world, process, image: CheckpointImage) -> list:
    """Restart step 5b: reattach the frozen user-thread continuations.

    The original Thread object is reused and re-pointed at the new
    process: the thread wrapper resolves its owning process through it,
    so 'main thread returns => process exits' keeps working after the
    continuation crosses process incarnations.
    """
    adopted = []
    for timg in image.threads:
        thread = timg.continuation.context
        thread.process = process
        process.threads.append(thread)
        adopted.append(thread)
    return adopted
