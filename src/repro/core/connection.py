"""Globally unique connection identifiers and the per-process table.

Section 4.4: "we refer to sockets by a globally unique ID (hostid, pid,
timestamp, per-process connection number) and thus can detect duplicates
at restart time."  The table is recorded in process memory (user_state)
by the hijack wrappers and written into the checkpoint image.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional


@dataclass(frozen=True, order=True)
class ConnectionId:
    """(hostid, pid, timestamp, per-process connection number)."""

    hostid: str
    pid: int
    timestamp: float
    conn_no: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.hostid}:{self.pid}:{self.timestamp:.6f}:{self.conn_no}"


@dataclass
class ConnectionInfo:
    """Everything the wrappers learned about one descriptor's connection."""

    conn_id: Optional[ConnectionId]
    domain: str  # inet | unix | pair | pipe | pty
    #: "connect" or "accept": which side of the handshake we were.  Decides
    #: who advertises and who dials at restart (Section 4.4 step 2).
    role: str
    #: Remote address dialled (connector side), for diagnostics.
    remote: Optional[tuple] = None
    #: Local bound address, for listeners.
    bound: Optional[tuple] = None
    #: Is this a listener socket?
    listener: bool = False
    #: setsockopt values to replay at restart.
    options: dict[str, int] = field(default_factory=dict)
    #: pty metadata (name at checkpoint time, master/slave side).
    pty_name: Optional[str] = None
    pty_side: Optional[str] = None
    #: External connection: the peer is NOT under DMTCP (e.g. a vncviewer
    #: attached to a checkpointed TightVNC server, Section 5.1).  External
    #: connections are closed at checkpoint time and not restored; the
    #: peer reconnects, as VNC clients do.
    external: bool = False

    def clone(self) -> "ConnectionInfo":
        """Copy for checkpoint images (options dict detached)."""
        return replace(self, options=dict(self.options))


class ConnectionTable:
    """fd -> ConnectionInfo map living in the process's memory."""

    def __init__(self) -> None:
        self.by_fd: dict[int, ConnectionInfo] = {}
        self.next_conn_no = 0

    def new_conn_no(self) -> int:
        """Allocate the next per-process connection number."""
        n = self.next_conn_no
        self.next_conn_no += 1
        return n

    def add(self, fd: int, info: ConnectionInfo) -> None:
        """Record a new descriptor's connection info."""
        self.by_fd[fd] = info

    def get(self, fd: int) -> Optional[ConnectionInfo]:
        """Info for ``fd``, or None if untracked."""
        return self.by_fd.get(fd)

    def drop(self, fd: int) -> None:
        """Forget a closed descriptor."""
        self.by_fd.pop(fd, None)

    def dup(self, oldfd: int, newfd: int) -> None:
        """dup2 shares the connection: both fds map to the same info."""
        if oldfd in self.by_fd:
            self.by_fd[newfd] = self.by_fd[oldfd]

    def fork_copy(self) -> "ConnectionTable":
        """Child's table after fork: same connections, distinct dict.

        Infos are *shared* objects (like the underlying descriptions), so
        a conn_id learned later by either process is visible to both --
        matching how the real table lives in shared wrapper state keyed
        by the kernel object, not by who recorded it.
        """
        dup = ConnectionTable()
        dup.by_fd = dict(self.by_fd)
        dup.next_conn_no = self.next_conn_no
        return dup

    def items(self):
        """Iterate ``(fd, info)`` pairs."""
        return self.by_fd.items()

    def __len__(self) -> int:
        return len(self.by_fd)
