"""Traceable end-to-end scenarios for ``python -m repro trace``.

Each scenario builds a world with tracing enabled, drives a complete
DMTCP workflow, and returns the world's tracer for export.  Scenarios
are deterministic: the same name and seed produce the same trace.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation
from repro.obs.tracer import Tracer

__all__ = ["SCENARIOS", "run_scenario"]


def _pingpong_apps(world) -> None:
    """A 2-process, 2-node client/server pair with live socket traffic."""

    def server_main(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 9000)
        yield from sys.listen(lfd)
        cfd = yield from sys.accept(lfd)
        while True:
            chunk = yield from sys.recv(cfd)
            if chunk is None:
                return
            yield from sys.send(cfd, chunk.nbytes, data=chunk.data)

    def client_main(sys, argv):
        from repro.kernel.syscalls import connect_retry

        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 9000)
        for i in range(200):
            yield from sys.send(fd, 4096, data=("ping", i))
            reply = yield from sys.recv(fd)
            if reply is None:
                return
            yield from sys.sleep(0.01)

    world.register_program("trace_server", server_main)
    world.register_program("trace_client", client_main)


def ckpt_restart(seed: int = 0) -> Tracer:
    """2-node checkpoint -> kill -> restart of a communicating pair.

    Covers all 5 checkpoint stages (suspend/elect/drain/write/refill),
    all 4 restart stages (restore_files/reconnect/restore_memory/refill),
    every coordinator barrier, and the MTCP write path.
    """
    world = build_cluster(n_nodes=2, seed=seed)
    world.tracer.enable()
    _pingpong_apps(world)
    comp = DmtcpComputation(world)
    comp.launch("node00", "trace_server")
    comp.launch("node01", "trace_client")
    world.engine.run(until=0.5)
    comp.checkpoint()  # timing checkpoint; computation continues
    kill = comp.checkpoint(kill=True)
    comp.restart(plan=kill.plan)
    world.engine.run(until=world.engine.now + 0.5)
    return world.tracer


def checkpoint_only(seed: int = 0) -> Tracer:
    """2-node checkpoint without restart (the continue-running path)."""
    world = build_cluster(n_nodes=2, seed=seed)
    world.tracer.enable()
    _pingpong_apps(world)
    comp = DmtcpComputation(world)
    comp.launch("node00", "trace_server")
    comp.launch("node01", "trace_client")
    world.engine.run(until=0.5)
    comp.checkpoint()
    world.engine.run(until=world.engine.now + 0.2)
    return world.tracer


def migrate(seed: int = 0) -> Tracer:
    """Checkpoint on node00, restart the whole pair relocated to node01."""
    world = build_cluster(n_nodes=2, seed=seed)
    world.tracer.enable()
    _pingpong_apps(world)
    comp = DmtcpComputation(world)
    comp.launch("node00", "trace_server")
    comp.launch("node00", "trace_client")
    world.engine.run(until=0.5)
    kill = comp.checkpoint(kill=True)
    comp.restart(plan=kill.plan, placement={"node00": "node01"})
    world.engine.run(until=world.engine.now + 0.5)
    return world.tracer


SCENARIOS: dict[str, Callable[[int], Tracer]] = {
    "ckpt-restart": ckpt_restart,
    "checkpoint": checkpoint_only,
    "migrate": migrate,
}


def run_scenario(name: str, seed: int = 0) -> Tracer:
    """Run a named scenario and return its (enabled) tracer."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
    return fn(seed)
