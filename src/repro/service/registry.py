"""Tenant registry: many DmtcpComputations sharing one world + one hub.

A single-tenant world installs the computation's own hijack factory as
``world.hijack_factory``; with N tenants that slot must multiplex.  The
registry owns the slot and dispatches on the process's ``DMTCP_TENANT``
environment variable -- the same key that namespaces checkpoint
directories, restart programs, and trace spans -- so each checkpointed
process gets a runtime and manager thread bound to *its* computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.launch import DmtcpComputation

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.world import World
    from repro.service.hub import CoordinatorHub

__all__ = ["TenantRegistry"]


class TenantRegistry:
    """Creates tenants and multiplexes the world's hijack factory."""

    def __init__(self, world: "World", hub: "CoordinatorHub"):
        self.world = world
        self.hub = hub
        self.tenants: dict[str, DmtcpComputation] = {}
        world.hijack_factory = self._hijack_factory

    def create_tenant(
        self,
        name: str,
        interval: float = 0.0,
        supervise: bool = True,
        compression: bool = False,
        incremental: bool = False,
    ) -> DmtcpComputation:
        """Build one tenant's computation and attach it to the hub.

        The computation points at the hub's host:port instead of a
        private coordinator, keeps its images under a per-tenant
        directory, and registers its CoordinatorState with the hub so
        the shared dispatcher can drive its protocol.
        """
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already exists")
        comp = DmtcpComputation(
            self.world,
            coordinator_host=self.hub.host,
            port=self.hub.port,
            ckpt_dir=f"/tmp/dmtcp/{name}",
            interval=interval,
            supervise=supervise,
            compression=compression,
            incremental=incremental,
            tenant=name,
            external_coordinator=True,
        )
        self.tenants[name] = comp
        self.hub.register(name, comp.state)
        return comp

    def get(self, name: str) -> Optional[DmtcpComputation]:
        return self.tenants.get(name)

    def _hijack_factory(self, world, process, base_sys):
        """Dispatch hijack to the owning tenant's computation."""
        tenant = process.env.get("DMTCP_TENANT", "")
        comp = self.tenants.get(tenant)
        if comp is None:
            raise KeyError(
                f"hijacked process {process.pid} names unknown tenant "
                f"{tenant!r}"
            )
        return comp._hijack_factory(world, process, base_sys)
