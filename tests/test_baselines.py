"""Baseline comparator tests: DejaVu overhead model, BLCR's single-node
limitation, and the head-to-head the paper could only cite."""

import pytest

from repro.apps import register_all_apps
from repro.baselines import BlcrCheckpointer, DejavuComputation
from repro.cluster import build_cluster
from repro.errors import CheckpointError
from repro.kernel.syscalls import connect_retry


def make_world(seed=41, n=4):
    w = build_cluster(n_nodes=n, seed=seed)
    register_all_apps(w)
    return w


def run_chombo(world, dejavu: bool, iters=10, ranks=4):
    """Run the Chombo-like stencil, optionally under DejaVu; returns
    (wallclock, computation)."""
    comp = None
    env = {}
    if dejavu:
        comp = DejavuComputation(world)
        env = {"DEJAVU_CKPT": "1"}
    t0 = world.engine.now
    proc = world.spawn_process(
        "node00", "orterun", ["orterun", "-n", str(ranks), "chombo", str(iters)], env
    )
    world.engine.run_until(lambda: not proc.alive)
    assert proc.exit_code == 0
    return world.engine.now - t0, comp


def test_dejavu_runtime_overhead_in_the_papers_range():
    """Section 2: DejaVu ~45% overhead on Chombo vs DMTCP ~0."""
    plain_world = make_world(seed=41)
    plain_time, _ = run_chombo(plain_world, dejavu=False)

    dv_world = make_world(seed=41)
    dv_time, comp = run_chombo(dv_world, dejavu=True)

    overhead = dv_time / plain_time - 1.0
    assert 0.15 < overhead < 0.9, f"overhead {overhead:.2%}"
    assert comp.total_overhead_seconds() > 0
    stats = list(comp.stats_by_pid.values())
    assert any(s.faults > 0 for s in stats)
    assert any(s.logged_bytes > 0 for s in stats)


def test_dejavu_incremental_checkpoint_writes_only_dirty():
    world = make_world(seed=43)
    comp = DejavuComputation(world)

    def app(sys, argv):
        rid = yield from sys.sbrk(32 * 2**20, "numeric")
        while True:
            yield from sys.sleep(0.5)
            yield from sys.mem_touch(rid, 0.1)

    world.register_program("dirtyapp", app)
    comp.launch("node00", "dirtyapp")
    world.engine.run(until=1.0)
    comp.checkpoint()  # full: everything dirty at creation
    world.engine.run(until=world.engine.now + 1.0)
    comp.checkpoint()
    proc = comp.processes[0]
    ckpts = proc.user_state["dejavu_stats"].checkpoints
    assert len(ckpts) == 2
    full_bytes, incr_bytes = ckpts[0][1], ckpts[1][1]
    assert incr_bytes < full_bytes / 2  # incremental saves most of the write


def test_dejavu_checkpoint_resumes_app():
    world = make_world(seed=44)
    comp = DejavuComputation(world)
    ticks = []

    def app(sys, argv):
        for i in range(30):
            yield from sys.sleep(0.1)
            ticks.append(i)

    world.register_program("ticker", app)
    comp.launch("node00", "ticker")
    world.engine.run(until=1.0)
    comp.checkpoint()
    world.engine.run(until=world.engine.now + 30.0)
    assert ticks == list(range(30))
    assert not world.scheduler.failures


def test_blcr_checkpoints_single_node_tree():
    world = make_world(seed=45)

    def child(sys):
        yield from sys.sleep(100.0)

    def app(sys, argv):
        yield from sys.sbrk(8 * 2**20, "numeric")
        yield from sys.fork(child)
        yield from sys.sleep(100.0)

    world.register_program("tree", app)
    root = world.spawn_process("node00", "tree")
    world.engine.run(until=1.0)
    blcr = BlcrCheckpointer(world)
    duration = blcr.checkpoint_tree(root)
    assert duration > 0
    world.engine.run(until=world.engine.now + 1.0)
    assert root.alive  # resumed


def test_blcr_refuses_cross_machine_sockets():
    """The gap DMTCP fills: kernel-level checkpointing cannot handle a
    socket to another machine (Section 2)."""
    world = make_world(seed=46)
    state = {}

    def server(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 5000)
        yield from sys.listen(lfd)
        fd = yield from sys.accept(lfd)
        yield from sys.sleep(100.0)

    def client(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node00", 5000)
        yield from sys.send(fd, 100)
        yield from sys.sleep(100.0)

    world.register_program("server", server)
    world.register_program("client", client)
    world.spawn_process("node00", "server")
    cl = world.spawn_process("node01", "client")
    world.engine.run(until=1.0)
    blcr = BlcrCheckpointer(world)
    with pytest.raises(CheckpointError, match="cross-machine"):
        blcr.checkpoint_tree(cl)
