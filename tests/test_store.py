"""Tests for the content-addressed checkpoint image store (``repro.store``).

Covers the chunking/content-identity layer, rendezvous placement, the
end-to-end dedup write path at barrier 5, manifest relocation, restart
round-trips, the serial-only and forked-checkpoint guards, the
lineage-skip failure logging, and the content-keyed estimate cache.
"""

import pytest

from repro.core import compression
from repro.core.launch import DmtcpComputation, resolve_store_replicas
from repro.errors import RestartError, SimulationError
from repro.faults.supervisor import (
    LineageSkipped,
    _image_file,
    find_newest_valid_plan,
)
from repro.harness.experiment import build_world
from repro.kernel.process import ProgramSpec, RegionSpec
from repro.store import (
    ChunkStore,
    advance_generations,
    chunk_digest,
    chunk_layout,
    dirty_chunk_count,
    region_chunks,
)

MB = 1 << 20


def _register_heapworker(world, heap_mb: int = 8):
    def worker(sys, argv):
        while True:
            yield from sys.cpu(0.1)
            yield from sys.sleep(0.1)

    spec = ProgramSpec(
        "heapworker", regions=(RegionSpec("heap", heap_mb * MB, "numeric"),)
    )
    world.register_program("heapworker", worker, spec)


def _store_world(n_nodes=2, seed=0, heap_mb=8, n_procs=1, **kwargs):
    world = build_world(n_nodes, seed=seed)
    _register_heapworker(world, heap_mb)
    comp = DmtcpComputation(world, store=True, **kwargs)
    hosts = world.machine.hostnames
    for i in range(n_procs):
        comp.launch(hosts[i % n_nodes], "heapworker")
    world.engine.run(until=1.0)
    return world, comp


# ----------------------------------------------------------------------
# Chunking and content identity
# ----------------------------------------------------------------------

def test_chunk_layout_covers_size_without_spanning():
    assert chunk_layout(0, MB) == []
    assert chunk_layout(MB, MB) == [MB]
    assert chunk_layout(3 * MB + 5, MB) == [MB, MB, MB, 5]
    assert sum(chunk_layout(7 * MB + 123, MB)) == 7 * MB + 123


def test_chunk_digest_deterministic_and_distinct():
    a = chunk_digest("k", 1, 0, 0, MB, "numeric")
    assert a == chunk_digest("k", 1, 0, 0, MB, "numeric")
    assert a != chunk_digest("k", 1, 1, 0, MB, "numeric")  # index
    assert a != chunk_digest("k", 1, 0, 1, MB, "numeric")  # generation
    assert a != chunk_digest("k", 1, 0, 0, MB, "zero")  # profile
    assert a != chunk_digest("q", 1, 0, 0, MB, "numeric")  # content key


def test_gen0_dedups_across_ranks_gen1_does_not():
    # two ranks, same program-derived content key, different region ids
    r0 = region_chunks("app:0:heap", 11, 2 * MB, "numeric", {}, MB)
    r1 = region_chunks("app:0:heap", 42, 2 * MB, "numeric", {}, MB)
    assert [c.digest for c in r0] == [c.digest for c in r1]
    # once written, each rank's lineage diverges
    w0 = region_chunks("app:0:heap", 11, 2 * MB, "numeric", {0: 1}, MB)
    w1 = region_chunks("app:0:heap", 42, 2 * MB, "numeric", {0: 1}, MB)
    assert w0[0].digest != w1[0].digest
    # the untouched tail chunk still dedups
    assert w0[1].digest == w1[1].digest == r0[1].digest


def test_dirty_chunk_count_is_a_prefix_fraction():
    assert dirty_chunk_count(4 * MB, 0.0, MB) == 0
    assert dirty_chunk_count(4 * MB, 0.25, MB) == 1
    assert dirty_chunk_count(4 * MB, 0.26, MB) == 2
    assert dirty_chunk_count(4 * MB, 1.0, MB) == 4
    assert dirty_chunk_count(0, 1.0, MB) == 0


def test_advance_generations_bumps_dirty_prefix():
    class R:
        size = 4 * MB
        dirty_fraction = 0.5
        chunk_gens = {}

    region = R()
    assert advance_generations(region, MB) == 2
    assert region.chunk_gens == {0: 1, 1: 1}
    assert advance_generations(region, MB) == 2
    assert region.chunk_gens == {0: 2, 1: 2}


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------

def test_placement_is_k_wide_rack_diverse_and_deterministic():
    world = build_world(8, seed=0)
    store = ChunkStore(world, replicas=2, rack_size=2)
    digests = [chunk_digest("k", 0, i, 0, MB, "numeric") for i in range(64)]
    primaries = set()
    for digest in digests:
        placed = store.placement(digest)
        assert len(placed) == 2
        assert len(set(placed)) == 2
        # rack-diverse: the two replicas never share a rack
        assert store.rack_of(placed[0]) != store.rack_of(placed[1])
        assert placed == store.placement(digest)  # pure function
        primaries.add(placed[0])
    # rendezvous hashing spreads primaries over the cluster
    assert len(primaries) >= 4


def test_placement_degrades_gracefully_with_fewer_racks_than_replicas():
    world = build_world(4, seed=0)
    store = ChunkStore(world, replicas=3, rack_size=8)  # one rack total
    placed = store.placement("d" * 32)
    assert len(placed) == 3
    assert len(set(placed)) == 3


def test_store_rejects_nonpositive_replicas():
    world = build_world(2, seed=0)
    with pytest.raises(ValueError, match="replicas"):
        ChunkStore(world, replicas=0)


def test_resolve_store_replicas_env_override(monkeypatch):
    world = build_world(2, seed=0)
    spec = world.spec.dmtcp
    assert resolve_store_replicas(None, spec) == spec.store_replicas
    assert resolve_store_replicas(3, spec) == 3
    monkeypatch.setenv("DMTCP_STORE_REPLICAS", "4")
    assert resolve_store_replicas(None, spec) == 4
    assert resolve_store_replicas(1, spec) == 1  # explicit beats env


# ----------------------------------------------------------------------
# End-to-end write path: dedup across ranks and generations
# ----------------------------------------------------------------------

def test_cross_rank_dedup_stores_unique_bytes_once():
    world, comp = _store_world(n_nodes=2, n_procs=2)
    out = comp.checkpoint()
    store = world.store
    assert store.stats["dedup_hits"] > 0
    # both ranks carry the same program image: unique ~ half of logical
    assert store.stats["unique_bytes"] <= store.stats["logical_bytes"] / 2 + MB
    assert store.summary()["dedup_ratio"] >= 1.9
    # every image shrank to a manifest + this rank's unique share
    assert out.total_stored_bytes < out.total_image_bytes / 2


def test_generation_dedup_second_checkpoint_is_manifest_sized():
    world, comp = _store_world(n_nodes=2, n_procs=1)
    out1 = comp.checkpoint()
    out2 = comp.checkpoint()
    # the worker never touches its heap: checkpoint 2 leases nothing
    assert out2.total_stored_bytes < out1.total_stored_bytes / 4
    assert world.store.stats["chunks_stored"] == len(
        {d for d in world.store.chunks}
    )


def test_written_region_reuploads_only_dirty_prefix():
    world, comp = _store_world(n_nodes=2, n_procs=1, heap_mb=8)
    comp.checkpoint()
    unique_after_1 = world.store.stats["unique_bytes"]
    proc = next(p for p in world.live_processes() if p.program == "heapworker")
    heap = proc.address_space.regions[-1]
    heap.touch(0.25)  # app writes a quarter of its 8 MB heap
    world.engine.run(until=world.engine.now + 0.5)
    comp.checkpoint()
    new_bytes = world.store.stats["unique_bytes"] - unique_after_1
    # only the dirty chunk prefix went back up (2 of 8 chunks), not the
    # whole heap and not the untouched code/stack regions
    assert 0 < new_bytes <= 0.5 * 8 * MB


def test_store_images_are_manifests_with_refs():
    world, comp = _store_world()
    out = comp.checkpoint()
    for host, paths in out.plan.images_by_host.items():
        for path in paths:
            payload = _image_file(world, host, path).payload
            refs = payload.store_refs
            assert refs, f"{path} has no chunk refs"
            assert all(len(r) == 3 for r in refs)
            # manifest-sized, not payload-sized
            assert payload.stored_bytes < payload.image_bytes


# ----------------------------------------------------------------------
# Restart round-trip and relocation
# ----------------------------------------------------------------------

def test_store_restart_roundtrip_preserves_content_identity():
    world, comp = _store_world(n_nodes=2, n_procs=1)
    out = comp.checkpoint(kill=True)
    restart = comp.restart(out.plan)
    assert restart.duration > 0
    procs = [p for p in world.live_processes() if p.program == "heapworker"]
    assert len(procs) == 1
    region = procs[0].address_space.regions[-1]
    # content identity survives the restart (future checkpoints dedup)
    assert region.content_key is not None
    assert region.dirty_fraction == 0.0 and region.written is False
    # and the next checkpoint is pure dedup
    before = world.store.stats["unique_bytes"]
    comp.checkpoint()
    assert world.store.stats["unique_bytes"] == before


def test_store_relocation_is_a_manifest_copy():
    world, comp = _store_world(n_nodes=2, n_procs=1)
    out = comp.checkpoint(kill=True)
    world.engine.run(until=world.engine.now + 5.0)  # drain replication
    dst = world.machine.hostnames[1]
    copied_before = world.machine.node(dst).disk.bytes_written
    restart = comp.restart(out.plan, placement={"node00": dst})
    copied = world.machine.node(dst).disk.bytes_written - copied_before
    assert restart.duration > 0
    procs = [p for p in world.live_processes() if p.program == "heapworker"]
    assert procs and procs[0].node.hostname == dst
    # relocation moved manifests (KBs), never the chunk payloads (MBs):
    # everything else node01 wrote is its own replica set + fetch traffic
    assert copied < 8 * MB


def test_restart_fails_fast_when_no_live_replica():
    world, comp = _store_world(n_nodes=4, n_procs=1, heap_mb=4)
    out = comp.checkpoint(kill=True)
    world.engine.run(until=world.engine.now + 5.0)  # drain replication
    store = world.store
    holders = {h for m in store.chunks.values() for h in m.present}
    for host in sorted(holders - {comp.coordinator_host}):
        world.crash_node(host)
    if comp.coordinator_host in holders:
        world.crash_node(comp.coordinator_host)
        world.reboot_node(comp.coordinator_host)
        comp.respawn_coordinator()
        # reboot wiped nothing on disk, but the page cache is gone and
        # presence filtering keeps only up hosts -- with every other
        # holder down the rebooted host still holds its own replicas, so
        # drop them explicitly to model total loss
        for meta in store.chunks.values():
            meta.present.discard(comp.coordinator_host)
    with pytest.raises(RestartError, match="no live replica"):
        comp.restart(out.plan)


# ----------------------------------------------------------------------
# Guards (satellite: serial-only fail-fast; forked incompatibility)
# ----------------------------------------------------------------------

def test_store_with_shards_fails_fast_naming_serial_fallback():
    world = build_world(2, seed=0)
    with pytest.raises(SimulationError, match="serial"):
        DmtcpComputation(world, store=True, sim_shards=2)


def test_store_rejects_forked_checkpoints():
    world, comp = _store_world()
    with pytest.raises(ValueError, match="forked"):
        comp.checkpoint(forked=True)


# ----------------------------------------------------------------------
# Lineage-skip logging (satellite: orphaned lineage is loud)
# ----------------------------------------------------------------------

def test_supervisor_logs_lineage_skip_when_newest_images_invalid():
    world = build_world(2, seed=0)
    _register_heapworker(world)
    comp = DmtcpComputation(world, incremental=True)
    comp.launch("node00", "heapworker")
    world.engine.run(until=1.0)
    comp.checkpoint()
    world.engine.run(until=world.engine.now + 0.5)
    newest = comp.checkpoint()
    world.tracer.enable()
    # corrupt the newest checkpoint's images (torn write: no payload)
    bad = []
    for host, paths in newest.plan.images_by_host.items():
        for path in paths:
            _image_file(world, host, path).payload = None
            bad.append((host, path))
    chosen = find_newest_valid_plan(world, comp.state, expected=1)
    assert chosen is not None and chosen.ckpt_id < newest.ckpt_id
    # the skip is queryable, not silent
    failures = world.scheduler.failures
    assert len(failures) == len(bad)
    host = bad[0][0]
    assert failures.by_host(host)
    assert failures.by_program("heapworker")
    assert all(isinstance(exc, LineageSkipped) for _t, exc in failures)
    assert world.tracer.counters.get("store.lineage_skipped") == len(bad)
    # polling again does not re-log the same skip
    find_newest_valid_plan(world, comp.state, expected=1)
    assert len(failures) == len(bad)


def test_store_image_restorable_feeds_supervisor_validation():
    world, comp = _store_world(n_nodes=4, n_procs=1, heap_mb=4)
    newest = comp.checkpoint(kill=True)
    world.engine.run(until=world.engine.now + 5.0)
    store = world.store
    # all holders down and their replicas gone: the plan must be skipped
    holders = {h for m in store.chunks.values() for h in m.present}
    for host in sorted(holders):
        world.crash_node(host)
    assert find_newest_valid_plan(world, comp.state, expected=1) is None
    assert store.stats["lineage_skipped"] > 0


# ----------------------------------------------------------------------
# Estimate cache (satellite: content-keyed hits across ranks)
# ----------------------------------------------------------------------

def test_estimate_cache_content_key_hits_across_region_ids():
    world = build_world(2, seed=0)
    cache = compression.EstimateCache()
    a = cache.get([(MB, "numeric")], world.spec.cpu, content_key="digest-a")
    assert cache.misses == 1 and cache.hits == 0
    b = cache.get([(MB, "numeric")], world.spec.cpu, content_key="digest-a")
    assert cache.hits == 1
    assert a is b
    # without a content key, the multiset key still works and is distinct
    c = cache.get([(MB, "numeric")], world.spec.cpu)
    assert cache.misses == 2
    assert c.output_bytes == a.output_bytes


def test_first_checkpoint_estimate_hits_across_ranks():
    compression.ESTIMATE_CACHE.clear()
    world, comp = _store_world(n_nodes=2, n_procs=2)
    comp.checkpoint()
    # rank 1's shared chunks hit rank 0's content-keyed entries on the
    # very first checkpoint (the multiset key could not do this)
    assert world.tracer.counters.get("store.estimate_cache_hits", 0) == 0  # tracer off
    assert compression.ESTIMATE_CACHE.hits > 0
