"""Syscall error paths: every errno the kernel can hand back."""

import pytest

from repro.cluster import build_cluster
from repro.errors import SyscallError


@pytest.fixture()
def world():
    return build_cluster(n_nodes=2, seed=61)


def run_expecting(world, main, expected_errnos):
    seen = []

    def wrapper(sys, argv):
        try:
            yield from main(sys)
        except SyscallError as err:
            seen.append(err.errno)

    world.register_program("probe", wrapper)
    world.spawn_process("node00", "probe")
    world.engine.run()
    assert seen == expected_errnos, seen


def test_ebadf_on_unknown_fd(world):
    def main(sys):
        yield from sys.close(999)

    run_expecting(world, main, ["EBADF"])


def test_enotsock_on_file_send(world):
    def main(sys):
        fd = yield from sys.open("/tmp/f", "w")
        yield from sys.send(fd, 10)

    run_expecting(world, main, ["ENOTSOCK"])


def test_einval_write_to_socket_via_file_api(world):
    def main(sys):
        a, b = yield from sys.socketpair()
        yield from sys.write(a, 10)

    run_expecting(world, main, ["EINVAL"])


def test_enoent_read_missing_file(world):
    def main(sys):
        yield from sys.open("/no/such/file", "r")

    run_expecting(world, main, ["ENOENT"])


def test_enoent_unlink_missing(world):
    def main(sys):
        yield from sys.unlink("/nope")

    run_expecting(world, main, ["ENOENT"])


def test_ebadf_write_to_readonly(world):
    def main(sys):
        fd = yield from sys.open("/tmp/ro", "w")
        yield from sys.write(fd, 5)
        yield from sys.close(fd)
        fd = yield from sys.open("/tmp/ro", "r")
        yield from sys.write(fd, 5)

    run_expecting(world, main, ["EBADF"])


def test_eisconn_double_connect(world):
    def main(sys):
        lfd = yield from sys.socket()
        addr = yield from sys.bind(lfd, 7100)
        yield from sys.listen(lfd)

        fd = yield from sys.socket()
        yield from sys.connect(fd, "node00", 7100)
        yield from sys.connect(fd, "node00", 7100)

    run_expecting(world, main, ["EISCONN"])


def test_eaddrinuse_double_listen_port(world):
    def main(sys):
        a = yield from sys.socket()
        yield from sys.bind(a, 7200)
        yield from sys.listen(a)
        b = yield from sys.socket()
        yield from sys.bind(b, 7200)
        yield from sys.listen(b)

    run_expecting(world, main, ["EADDRINUSE"])


def test_ehostunreach_ssh_unknown_host(world):
    def main(sys):
        yield from sys.ssh("node99", "whatever", ["whatever"])

    run_expecting(world, main, ["EHOSTUNREACH"])


def test_enosys_unknown_syscall(world):
    from repro.kernel.syscalls import Call

    def main(sys):
        yield Call("frobnicate")

    run_expecting(world, main, ["ENOSYS"])


def test_esrch_kill_nonexistent(world):
    def main(sys):
        yield from sys.kill(31337, 9)

    run_expecting(world, main, ["ESRCH"])


def test_einval_bad_mmap_profile(world):
    def main(sys):
        yield from sys.mmap(4096, "nonsense")

    run_expecting(world, main, ["EINVAL"])


def test_einval_semaphore_ops_on_unknown_id(world):
    def main(sys):
        yield from sys.sem_acquire(404)

    run_expecting(world, main, ["EINVAL"])


def test_enotty_ptsname_on_socket(world):
    def main(sys):
        a, _b = yield from sys.socketpair()
        yield from sys.ptsname(a)

    run_expecting(world, main, ["ENOTTY"])


def test_connreset_send_after_peer_close(world):
    def main(sys):
        a, b = yield from sys.socketpair()
        yield from sys.close(b)
        yield from sys.send(a, 10)

    run_expecting(world, main, ["ECONNRESET"])


def test_epipe_send_on_own_closed_socket(world):
    def main(sys):
        a, b = yield from sys.socketpair()
        desc = None
        yield from sys.close(a)
        yield from sys.dup2(b, 9)  # keep b alive under another fd
        # sending via a stale fd number fails cleanly
        try:
            yield from sys.send(a, 10)
        except SyscallError as err:
            assert err.errno == "EBADF"
            raise

    run_expecting(world, main, ["EBADF"])


def test_echild_waitpid_stranger(world):
    def main(sys):
        yield from sys.waitpid(1)

    run_expecting(world, main, ["ECHILD"])


def test_unhandled_syscall_error_kills_process(world):
    def main(sys, argv):
        yield from sys.close(999)  # uncaught

    world.register_program("dying", main)
    proc = world.spawn_process("node00", "dying")
    world.engine.run()
    assert proc.exit_code == 1
    assert world.scheduler.failures
    world.scheduler.failures.clear()
