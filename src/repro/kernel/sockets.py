"""TCP/IP and UNIX-domain sockets with bounded kernel buffers.

The model keeps the properties DMTCP's drain/refill protocol depends on:

* data can be *in flight* (reserved in the receiver's buffer but not yet
  readable) while user threads are suspended -- the kernel keeps moving
  it, which is why the paper's leaders must flush with a token and drain
  until they see it;
* receive buffers are bounded, so senders block when the peer is slow;
* descriptions are shared across fork/dup2, so several processes can own
  one connection (the reason for leader election);
* endpoints carry enough metadata (domain, listener-ness, bound address,
  socket options) for the DMTCP wrappers to rebuild them at restart.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.errors import SyscallError
from repro.kernel.process import Description
from repro.kernel.streams import ByteBuffer, Chunk
from repro.sim.tasks import Future

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import Node
    from repro.kernel.world import World


class SocketEndpoint(Description):
    """One end of a (possibly not-yet-connected) stream socket."""

    _inodes = itertools.count(1)

    def __init__(self, world: "World", node: "Node", domain: str = "inet"):
        super().__init__()
        self.world = world
        self.node = node
        self.domain = domain  # inet | unix | pair | pipe | pty
        self.inode = next(SocketEndpoint._inodes)
        self.local_addr: Optional[tuple[str, int]] = None
        self.local_path: Optional[str] = None  # unix domain
        self.peer: Optional[SocketEndpoint] = None
        self.rx = ByteBuffer(world.spec.network.socket_buffer_bytes, f"rx:{self.inode}")
        self.connected = False
        self.closed = False
        self.options: dict[str, int] = {}
        # FIFO delivery: transfers can overtake each other on the fabric
        # (a small chunk finishing before a big one), but TCP never
        # reorders, and DMTCP's drain token relies on that
        self._tx_seq = 0
        self._rx_next = 0
        self._rx_pending: dict[int, Chunk] = {}
        #: How this endpoint came to be, for the DMTCP connection table:
        #: "connect" | "accept" | "pair" | "pipe-r" | "pipe-w" | "pty-m" | "pty-s"
        self.origin: str = ""

    # ------------------------------------------------------------------
    @property
    def peer_hostname(self) -> Optional[str]:
        """Hostname of the remote side, if connected."""
        return self.peer.node.hostname if self.peer else None

    def set_buffer_size(self, nbytes: int) -> None:
        """SO_SNDBUF/SO_RCVBUF: replace the receive queue capacity."""
        self.rx.capacity = max(int(nbytes), 1)

    def on_last_close(self) -> None:
        """Last fd closed: tear the connection down."""
        self.close_endpoint()

    def close_endpoint(self) -> None:
        """Half-close towards the peer (FIN after data in flight lands)."""
        if self.closed:
            return
        self.closed = True
        peer = self.peer
        if peer is not None and not peer.closed:
            fin = getattr(peer, "fabric_fin", None)
            if fin is not None:
                # cross-shard peer: the FIN becomes a fabric message whose
                # arrival timestamp carries the propagation delay
                fin()
            else:
                # FIN after one propagation delay
                delay = 0.0 if peer.node is self.node else self.world.spec.network.latency_s
                self.world.engine.call_after(delay, peer.rx.set_eof)
        self.rx.cancel_waiters()

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self.closed else ("connected" if self.connected else "raw")
        return f"<Socket inode={self.inode} {self.domain} {state} on {self.node.hostname}>"


class ListenerSocket(Description):
    """A bound, listening socket with a backlog of established peers."""

    def __init__(self, world: "World", node: "Node", domain: str = "inet"):
        super().__init__()
        self.world = world
        self.node = node
        self.domain = domain
        self.inode = next(SocketEndpoint._inodes)
        self.addr: Optional[tuple[str, int]] = None
        self.path: Optional[str] = None
        self.backlog: list[SocketEndpoint] = []
        self._accept_waiters: list = []  # Futures
        self.closed = False
        self.options: dict[str, int] = {}

    def push_established(self, server_end: SocketEndpoint) -> None:
        """A SYN completed: queue the established server-side endpoint."""
        self.backlog.append(server_end)
        waiters, self._accept_waiters = self._accept_waiters, []
        for fut in waiters:
            fut.resolve(None)

    def wait_backlog(self):
        """Future resolving when the backlog becomes non-empty."""
        from repro.sim.tasks import Future

        fut = Future(f"accept:{self.inode}")
        if self.backlog:
            fut.resolve(None)
        else:
            self._accept_waiters.append(fut)
        return fut

    def on_last_close(self) -> None:
        """Listener fully closed: free the port, reset the backlog."""
        self.closed = True
        if self.addr is not None:
            self.world.release_port(self.node, self.addr[1])
        if self.path is not None:
            self.world.release_unix_path(self.node, self.path)
        # connections sitting in the backlog were never accepted: reset
        # them so the connecting peers see EOF instead of hanging forever
        backlog, self.backlog = self.backlog, []
        for ep in backlog:
            ep.close_endpoint()

    def __repr__(self) -> str:  # pragma: no cover
        where = self.addr or self.path
        return f"<Listener inode={self.inode} {where} on {self.node.hostname}>"


def connect_endpoints(a: SocketEndpoint, b: SocketEndpoint) -> None:
    """Wire two endpoints into an established connection."""
    a.peer = b
    b.peer = a
    a.connected = True
    b.connected = True


def make_socketpair(world: "World", node: "Node", domain: str = "pair") -> tuple[SocketEndpoint, SocketEndpoint]:
    """Create a connected same-node endpoint pair."""
    a = SocketEndpoint(world, node, domain)
    b = SocketEndpoint(world, node, domain)
    a.origin = b.origin = "pair"
    connect_endpoints(a, b)
    return a, b


class _Transmit:
    """State machine for one in-flight chunk (replaces per-send closures).

    Registered on the reservation future first (``seq < 0``), then -- once
    bandwidth is reserved and the wire transfer is submitted -- re-registered
    on the transfer future to commit the chunk at the peer in TCP order.
    """

    __slots__ = ("world", "src", "peer", "chunk", "accepted", "seq")

    def __init__(self, world: "World", src: SocketEndpoint, chunk: Chunk, accepted):
        self.world = world
        self.src = src
        self.peer = src.peer
        self.chunk = chunk
        self.accepted = accepted
        self.seq = -1

    def __call__(self) -> None:
        src = self.src
        peer = self.peer
        if self.seq < 0:  # reservation settled: copy into the kernel
            if peer.closed or src.closed:
                peer.rx.unreserve(self.chunk.nbytes)
                self.accepted.reject(SyscallError("EPIPE", f"socket inode {src.inode}"))
                return
            self.seq = src._tx_seq
            src._tx_seq += 1
            self.world.machine.network.transfer(
                src.node, peer.node, self.chunk.nbytes, on_done=self
            )
            self.accepted.resolve(None)
            return
        # wire transfer landed: deliver in TCP order
        seq = self.seq
        if seq == peer._rx_next and not peer._rx_pending:
            # common case: nothing overtook us -- skip the reorder dict
            peer.rx.commit(self.chunk)
            peer._rx_next = seq + 1
            return
        peer._rx_pending[seq] = self.chunk
        while peer._rx_next in peer._rx_pending:
            peer.rx.commit(peer._rx_pending.pop(peer._rx_next))
            peer._rx_next += 1


def transmit(world: "World", src: SocketEndpoint, chunk: Chunk, force: bool = False):
    """Kernel-side transmit: reserve peer buffer space, move the bytes.

    Returns None when the copy into the kernel happened synchronously
    (buffer space was free -- the common case), else a future resolving
    when the *send syscall* may complete, i.e. when space was reserved.
    The wire transfer continues as kernel activity either way and commits
    the chunk into the peer's receive queue when it lands.

    ``force`` skips flow control.  It exists for DMTCP's refill stage:
    the model charges the whole channel capacity (SO_SNDBUF + SO_RCVBUF
    + wire) to the receive queue, so re-sending everything the channel
    legitimately held can transiently exceed the queue's nominal bound.
    """
    if src.closed or src.peer is None or not src.connected:
        raise SyscallError("EPIPE", f"socket inode {src.inode}")
    peer = src.peer
    if peer.closed:
        raise SyscallError("ECONNRESET", f"socket inode {src.inode}")
    if getattr(peer, "fabric_cid", None) is not None:
        # cross-shard connection: the chunk ships as a timestamped fabric
        # message (always synchronous; no remote back-pressure modeled)
        peer.fabric_transmit(src, chunk)
        return None
    if force:
        peer.rx._reserved += min(chunk.nbytes, peer.rx.capacity)
    elif not peer.rx.try_reserve(chunk.nbytes):
        # peer buffer full: block the sender on the reservation queue
        accepted = Future("send:accepted")
        peer.rx.reserve(chunk.nbytes).add_done(_Transmit(world, src, chunk, accepted))
        return accepted
    # space granted synchronously: no reservation or accepted future, the
    # _Transmit goes straight to its delivery phase on the wire transfer
    tr = _Transmit(world, src, chunk, None)
    tr.seq = src._tx_seq
    src._tx_seq += 1
    world.machine.network.transfer(src.node, peer.node, chunk.nbytes, on_done=tr)
    return None
