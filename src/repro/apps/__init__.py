"""The paper's workloads, rebuilt as simulated programs.

* :mod:`repro.apps.shell_apps` -- the 21 desktop/interactive-language
  applications of Figure 3 (bc ... vim/cscope), modelled by calibrated
  memory-content profiles, process trees, ptys and threads;
* :mod:`repro.apps.ipython_app` -- the iPython shell and its parallel
  computing demo (socket-based, no MPI);
* :mod:`repro.apps.pargeant4` -- ParGeant4: TOP-C master-worker event
  simulation over MPI (the Figure 5 scalability workload);
* :mod:`repro.apps.nas` -- miniature NAS Parallel Benchmarks (EP, CG,
  MG, IS, LU, SP, BT) with the real communication patterns;
* :mod:`repro.apps.memhog` -- the Figure 6 synthetic memory allocator;
* :mod:`repro.apps.runcms` -- the runCMS startup model (680 MB, 540
  dynamic libraries);
* :mod:`repro.apps.chombo` -- a Chombo-like stencil code used for the
  DejaVu comparison baseline.
"""

from repro.apps.profiles import APP_PROFILES, AppProfile
from repro.apps.shell_apps import register_shell_apps


def register_all_apps(world) -> None:
    """Register every workload (and both MPI stacks) with a world."""
    from repro.apps.chombo import register_chombo
    from repro.apps.ipython_app import register_ipython
    from repro.apps.memhog import register_memhog
    from repro.apps.nas import register_nas
    from repro.apps.notebook import register_notebook
    from repro.apps.pargeant4 import register_pargeant4
    from repro.apps.runcms import register_runcms
    from repro.mpi import register_mpich2, register_openmpi

    register_mpich2(world)
    register_openmpi(world)
    register_shell_apps(world)
    register_ipython(world)
    register_pargeant4(world)
    register_nas(world)
    register_memhog(world)
    register_runcms(world)
    register_chombo(world)
    register_notebook(world)


__all__ = ["APP_PROFILES", "AppProfile", "register_all_apps", "register_shell_apps"]
