"""MPICH2-style process management: the MPD daemon ring.

``mpdboot -n N`` spawns one ``mpd`` daemon per node -- the first locally,
the rest over ssh (which is how DMTCP's ssh wrapper pulls them under
checkpoint control, Section 3).  The daemons form a TCP ring; launch
requests from ``mpiexec`` travel around the ring until they reach the
target host's daemon, which forks the MPI rank.  The ring sockets and
daemon processes are deliberately part of the checkpoint ("the MPI
resource management processes are also checkpointed").
"""

from __future__ import annotations

from repro.core import protocol as P
from repro.kernel.process import ProgramSpec, RegionSpec
from repro.kernel.streams import FrameAssembler
from repro.kernel.syscalls import Sys, connect_retry, recv_frame, send_frame

from repro.mpi.pm import serve_pmi

MPD_PORT = 6946

_MPD_SPEC = ProgramSpec(
    "mpd",
    regions=(
        RegionSpec("code", 512 * 1024, "code"),
        RegionSpec("heap", 1536 * 1024, "text"),
    ),
)
_LAUNCHER_SPEC = ProgramSpec(
    "mpi_launcher",
    regions=(
        RegionSpec("code", 384 * 1024, "code"),
        RegionSpec("heap", 768 * 1024, "text"),
    ),
)


def mpd_main(sys: Sys, argv):
    """One MPD daemon: ring membership + launch forwarding."""
    my_host = yield from sys.gethostname()
    state = {
        "ring": [],  # ordered hostnames once the ring is set
        "prev_fd": None,  # our outgoing ring link (towards the previous mpd)
        "prev_asm": FrameAssembler(),
    }

    lfd = yield from sys.socket()
    yield from sys.bind(lfd, MPD_PORT)
    yield from sys.listen(lfd, backlog=64)

    prev_host = yield from sys.getenv("MPD_PREV", "")
    if prev_host:
        yield from _dial_prev(sys, state, prev_host)

    while True:
        cfd = yield from sys.accept(lfd)
        yield from sys.thread_create(lambda hsys, f=cfd: _mpd_conn(hsys, f, state, my_host))


def _dial_prev(sys: Sys, state: dict, prev_host: str):
    fd = yield from sys.socket()
    yield from connect_retry(sys, fd, prev_host, MPD_PORT)
    state["prev_fd"] = fd


def _forward(sys: Sys, state: dict, message: dict):
    """Pass a ring message one hop along (towards our predecessor)."""
    yield from send_frame(sys, state["prev_fd"], message, P.CTL_FRAME_BYTES)


def _mpd_conn(sys: Sys, fd: int, state: dict, my_host: str):
    """Serve one incoming connection (ring neighbour, mpdboot, mpiexec)."""
    asm = FrameAssembler()
    while True:
        result = yield from recv_frame(sys, fd, asm)
        if result is None:
            return
        message = result[0]
        kind = message["kind"]
        if kind == "close-ring":
            # mpdboot tells the first mpd to close the cycle
            yield from _dial_prev(sys, state, message["last_host"])
            yield from send_frame(sys, fd, P.msg("ok"), P.CTL_FRAME_BYTES)
        elif kind == "ring-set":
            state["ring"] = list(message["hosts"])
            if message.get("hops", 0) > 0:
                fwd = dict(message)
                fwd["hops"] = message["hops"] - 1
                yield from _forward(sys, state, fwd)
        elif kind == "ring-info":
            yield from send_frame(
                sys, fd, P.msg("ring", hosts=list(state["ring"])), P.CTL_FRAME_BYTES
            )
        elif kind == "launch":
            if message["host"] == my_host:
                yield from sys.spawn(message["program"], message["argv"], message["env"])
            else:
                yield from _forward(sys, state, message)
        elif kind == "mpdallexit":
            # administrative shutdown (not used during checkpoints)
            if message.get("hops", 0) > 0:
                fwd = dict(message)
                fwd["hops"] = message["hops"] - 1
                yield from _forward(sys, state, fwd)
            yield from sys.exit(0)


def mpdboot_main(sys: Sys, argv):
    """``mpdboot -n N``: build an N-node MPD ring (Section 3's example)."""
    n = int(argv[argv.index("-n") + 1])
    hosts = (yield from sys.nodes())[:n]
    my_host = yield from sys.gethostname()
    if hosts[0] != my_host:
        hosts = [my_host] + [h for h in hosts if h != my_host][: n - 1]
    # first daemon locally, the rest via ssh (intercepted by DMTCP);
    # the console's environment is exported to every daemon
    base_env = yield from sys.environ()
    yield from sys.spawn("mpd", ["mpd"], {**base_env, "MPD_PREV": ""})
    for i in range(1, len(hosts)):
        yield from sys.ssh(
            hosts[i], "mpd", ["mpd"], {**base_env, "MPD_PREV": hosts[i - 1]}
        )
    # close the ring and circulate membership
    fd = yield from sys.socket()
    yield from connect_retry(sys, fd, hosts[0], MPD_PORT)
    yield from send_frame(
        sys, fd, P.msg("close-ring", last_host=hosts[-1]), P.CTL_FRAME_BYTES
    )
    asm = FrameAssembler()
    yield from recv_frame(sys, fd, asm)  # ok
    yield from send_frame(
        sys, fd, P.msg("ring-set", hosts=hosts, hops=len(hosts) - 1), P.CTL_FRAME_BYTES
    )
    yield from sys.close(fd)


def mpiexec_main(sys: Sys, argv):
    """``mpiexec -n P prog args...``: launch P ranks over the MPD ring."""
    n = int(argv[argv.index("-n") + 1])
    prog_index = argv.index("-n") + 2
    program = argv[prog_index]
    prog_args = argv[prog_index:]
    my_host = yield from sys.gethostname()

    # ask the local mpd for ring membership
    mpd_fd = yield from sys.socket()
    yield from connect_retry(sys, mpd_fd, my_host, MPD_PORT)
    asm = FrameAssembler()
    hosts: list = []
    while not hosts:
        yield from send_frame(sys, mpd_fd, P.msg("ring-info"), P.CTL_FRAME_BYTES)
        reply = yield from recv_frame(sys, mpd_fd, asm)
        hosts = reply[0]["hosts"]
        if not hosts:
            yield from sys.sleep(0.05)  # ring-set still circulating

    # PMI wire-up service
    pmi_lfd = yield from sys.socket()
    pmi_addr = yield from sys.bind(pmi_lfd, 0)
    yield from sys.listen(pmi_lfd, backlog=max(n, 8))
    job_state: dict = {}
    tid = yield from sys.thread_create(
        lambda tsys: serve_pmi(tsys, pmi_lfd, n, job_state)
    )

    for rank in range(n):
        target = hosts[rank % len(hosts)]
        env = {
            "MPI_RANK": str(rank),
            "MPI_SIZE": str(n),
            "MPI_PM_HOST": my_host,
            "MPI_PM_PORT": str(pmi_addr[1]),
        }
        yield from send_frame(
            sys,
            mpd_fd,
            P.msg("launch", host=target, program=program, argv=prog_args, env=env),
            P.CTL_FRAME_BYTES,
        )
    yield from sys.thread_join(tid)  # returns when every rank finalized
    yield from sys.close(pmi_lfd)
    yield from sys.close(mpd_fd)


def register_mpich2(world) -> None:
    """Register mpd/mpdboot/mpiexec with a world's program table."""
    world.register_program("mpd", mpd_main, _MPD_SPEC)
    world.register_program("mpdboot", mpdboot_main, _LAUNCHER_SPEC)
    world.register_program("mpiexec", mpiexec_main, _LAUNCHER_SPEC)
