"""Property-based tests of the headline invariant.

For any checkpoint moment and any relocation, a computation's output is
unchanged by checkpoint + kill + restart.  Hypothesis drives the
checkpoint time and the placement; the workload exchanges framed
messages with verifiable contents, so corruption, loss or duplication in
the drain/refill/reconnect machinery cannot hide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation
from repro.kernel.streams import FrameAssembler
from repro.kernel.syscalls import connect_retry, recv_frame, send_frame

N_MSGS = 16


def _run_pipeline(ckpt_at: float, placement_shift: int, do_restart: bool = True):
    """Producer -> relay -> sink across three nodes; returns sink output."""
    world = build_cluster(n_nodes=4, seed=99)
    received = []
    done = {"ok": False}

    def sink(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 6100)
        yield from sys.listen(lfd)
        fd = yield from sys.accept(lfd)
        asm = FrameAssembler()
        while len(received) < N_MSGS:
            payload, _ = yield from recv_frame(sys, fd, asm)
            received.append(payload)
            yield from sys.sleep(0.05)
        done["ok"] = True

    def relay(sys, argv):
        lfd = yield from sys.socket()
        yield from sys.bind(lfd, 6101)
        yield from sys.listen(lfd)
        up = yield from sys.accept(lfd)
        down = yield from sys.socket()
        yield from connect_retry(sys, down, "node00", 6100)
        asm = FrameAssembler()
        for _ in range(N_MSGS):
            payload, size = yield from recv_frame(sys, up, asm)
            yield from send_frame(sys, down, ("relayed", payload), size)

    def producer(sys, argv):
        fd = yield from sys.socket()
        yield from connect_retry(sys, fd, "node01", 6101)
        for i in range(N_MSGS):
            yield from send_frame(sys, fd, ("msg", i, "x" * i), 30_000)
            yield from sys.sleep(0.02)
        yield from sys.sleep(300.0)

    world.register_program("sink", sink)
    world.register_program("relay", relay)
    world.register_program("producer", producer)
    comp = DmtcpComputation(world)
    comp.launch("node00", "sink")
    comp.launch("node01", "relay")
    comp.launch("node02", "producer")

    if do_restart:
        world.engine.run(until=ckpt_at)
        comp.checkpoint(kill=True)
        placement = {
            f"node{i:02d}": f"node{(i + placement_shift) % 4:02d}" for i in range(3)
        }
        comp.restart(placement=placement)
    world.engine.run_until(lambda: done["ok"])
    assert not world.scheduler.failures, world.scheduler.failures
    return received


#: The no-checkpoint reference output, computed once.
_REFERENCE = None


def _reference():
    global _REFERENCE
    if _REFERENCE is None:
        _REFERENCE = _run_pipeline(0.0, 0, do_restart=False)
    return _REFERENCE


@settings(max_examples=6, deadline=None)
@given(
    ckpt_at=st.floats(min_value=0.3, max_value=1.4),
    shift=st.integers(min_value=0, max_value=3),
)
def test_property_output_invariant_under_checkpoint(ckpt_at, shift):
    # regression guard: ckpt_at=0.599..., shift=1 once livelocked restart
    # when a restored process exited before its manager reported
    # restart-done (fixed by the restart-quorum shrink in the coordinator)
    out = _run_pipeline(ckpt_at, shift)
    assert out == _reference()


def test_restart_survives_member_exit_before_report():
    """Regression: with this checkpoint time and every process relocated,
    the relay finishes its work right after resuming and exits before its
    manager thread can report restart-done; the coordinator must shrink
    the restart quorum instead of waiting forever."""
    out = _run_pipeline(0.5991116130690657, 1)
    assert out == _reference()


def test_reference_output_is_complete():
    ref = _reference()
    assert len(ref) == N_MSGS
    assert ref == [("relayed", ("msg", i, "x" * i)) for i in range(N_MSGS)]
