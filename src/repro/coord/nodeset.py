"""Compact cluster-membership addressing (ClusterShell-style).

A :class:`RangeSet` is an ordered set of non-negative integers stored as
sorted, disjoint, inclusive ``(start, stop)`` ranges; a :class:`NodeSet`
maps hostname prefixes to RangeSets.  Either can hold a 32k-node cluster
in a handful of tuples, render it as one folded string
(``"node[0000-8191]"``), and answer rank/membership queries with range
arithmetic -- the representation the propagation tree routes subtrees
with, instead of per-object bookkeeping.

Zero-padding is preserved: parsing ``node[00-31]`` remembers width 2 and
folds back to the same string.  All set operations are eager and return
new objects; nothing here touches the simulation.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Optional

__all__ = ["RangeSet", "NodeSet"]

_RANGE_RE = re.compile(r"^(\d+)(?:-(\d+))?$")
#: ``prefix[ranges]suffix-free`` or a plain ``prefix123`` singleton.
_PATTERN_RE = re.compile(r"^(?P<prefix>.*?)\[(?P<ranges>[\d,\-]+)\]$")
_SINGLE_RE = re.compile(r"^(?P<prefix>.*?)(?P<index>\d+)$")


class RangeSet:
    """A set of non-negative ints as sorted disjoint inclusive ranges."""

    __slots__ = ("_ranges", "padding")

    def __init__(self, spec: str = "", padding: int = 0):
        self.padding = padding
        ranges: list[tuple[int, int]] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            m = _RANGE_RE.match(part)
            if m is None:
                raise ValueError(f"bad range {part!r} in {spec!r}")
            start = int(m.group(1))
            stop = int(m.group(2)) if m.group(2) is not None else start
            if stop < start:
                raise ValueError(f"reversed range {part!r} in {spec!r}")
            if self.padding == 0 and len(m.group(1)) > 1 and m.group(1)[0] == "0":
                self.padding = len(m.group(1))
            ranges.append((start, stop))
        self._ranges = _fold(ranges)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_ints(cls, ints: Iterable[int], padding: int = 0) -> "RangeSet":
        """Build from any iterable of ints (duplicates welcome)."""
        rs = cls(padding=padding)
        rs._ranges = _fold([(i, i) for i in ints])
        return rs

    @classmethod
    def from_ranges(
        cls, ranges: Iterable[tuple[int, int]], padding: int = 0
    ) -> "RangeSet":
        """Build from inclusive ``(start, stop)`` pairs (any order/overlap)."""
        rs = cls(padding=padding)
        rs._ranges = _fold(list(ranges))
        return rs

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "RangeSet") -> "RangeSet":
        return RangeSet.from_ranges(
            list(self._ranges) + list(other._ranges),
            padding=max(self.padding, other.padding),
        )

    def intersection(self, other: "RangeSet") -> "RangeSet":
        out: list[tuple[int, int]] = []
        i = j = 0
        a, b = self._ranges, other._ranges
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            # advance whichever range ends first
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return RangeSet.from_ranges(out, padding=max(self.padding, other.padding))

    def difference(self, other: "RangeSet") -> "RangeSet":
        out: list[tuple[int, int]] = []
        j = 0
        b = other._ranges
        for start, stop in self._ranges:
            cur = start
            while j < len(b) and b[j][1] < cur:
                j += 1
            k = j
            while cur <= stop:
                if k >= len(b) or b[k][0] > stop:
                    out.append((cur, stop))
                    break
                if b[k][0] > cur:
                    out.append((cur, b[k][0] - 1))
                cur = b[k][1] + 1
                k += 1
        return RangeSet.from_ranges(out, padding=self.padding)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, value: int) -> bool:
        for start, stop in self._ranges:
            if start <= value <= stop:
                return True
            if start > value:
                return False
        return False

    def __len__(self) -> int:
        return sum(stop - start + 1 for start, stop in self._ranges)

    def __iter__(self) -> Iterator[int]:
        for start, stop in self._ranges:
            yield from range(start, stop + 1)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other) -> bool:
        return isinstance(other, RangeSet) and self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(tuple(self._ranges))

    def __getitem__(self, rank):
        """The ``rank``-th smallest member (or a RangeSet for a slice)."""
        if isinstance(rank, slice):
            idx = range(len(self))[rank]
            if idx.step == 1:  # contiguous slice: pure range arithmetic
                return self.slice(idx.start, idx.stop)
            return RangeSet.from_ints((self[i] for i in idx), padding=self.padding)
        n = len(self)
        if rank < 0:
            rank += n
        if not 0 <= rank < n:
            raise IndexError(rank)
        for start, stop in self._ranges:
            span = stop - start + 1
            if rank < span:
                return start + rank
            rank -= span
        raise IndexError(rank)  # pragma: no cover - unreachable

    def slice(self, lo: int, hi: int) -> "RangeSet":
        """Members with rank in ``[lo, hi)`` -- O(#ranges), no iteration."""
        out: list[tuple[int, int]] = []
        seen = 0
        for start, stop in self._ranges:
            span = stop - start + 1
            a = max(lo - seen, 0)
            b = min(hi - seen, span)
            if a < b:
                out.append((start + a, start + b - 1))
            seen += span
            if seen >= hi:
                break
        return RangeSet.from_ranges(out, padding=self.padding)

    def index(self, value: int) -> int:
        """Rank of ``value`` (inverse of ``self[rank]``)."""
        rank = 0
        for start, stop in self._ranges:
            if value < start:
                break
            if value <= stop:
                return rank + (value - start)
            rank += stop - start + 1
        raise ValueError(f"{value} not in {self}")

    @property
    def ranges(self) -> tuple[tuple[int, int], ...]:
        """The folded ``(start, stop)`` pairs (read-only view)."""
        return tuple(self._ranges)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        for start, stop in self._ranges:
            a, b = _pad(start, self.padding), _pad(stop, self.padding)
            parts.append(a if start == stop else f"{a}-{b}")
        return ",".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeSet({str(self)!r})"


def _fold(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and merge overlapping/adjacent inclusive ranges."""
    out: list[tuple[int, int]] = []
    for start, stop in sorted(ranges):
        if start < 0:
            raise ValueError(f"negative range start {start}")
        if out and start <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], stop))
        else:
            out.append((start, stop))
    return out


def _pad(value: int, padding: int) -> str:
    return f"{value:0{padding}d}" if padding else str(value)


class NodeSet:
    """A set of hostnames as ``{prefix: RangeSet}`` -- one folded string.

    Parses and renders the bracket syntax: ``"node[00-31],gpu[0-3]"``.
    Plain names with a numeric tail (``node07``) join the prefix group;
    fully non-numeric names are kept verbatim as zero-range prefixes.
    Iteration order is prefix-lexicographic, then numeric.
    """

    __slots__ = ("_groups", "_plain")

    def __init__(self, spec: str = ""):
        #: prefix -> RangeSet of indices
        self._groups: dict[str, RangeSet] = {}
        #: names with no numeric tail (e.g. "san"), kept as-is
        self._plain: set[str] = set()
        for pattern in _split_patterns(spec):
            m = _PATTERN_RE.match(pattern)
            if m is not None:
                self._merge(m.group("prefix"), RangeSet(m.group("ranges")))
                continue
            m = _SINGLE_RE.match(pattern)
            if m is not None:
                idx = m.group("index")
                rs = RangeSet(idx)
                self._merge(m.group("prefix"), rs)
            else:
                self._plain.add(pattern)

    def _merge(self, prefix: str, rs: RangeSet) -> None:
        cur = self._groups.get(prefix)
        self._groups[prefix] = cur.union(rs) if cur is not None else rs
        if not self._groups[prefix]:
            del self._groups[prefix]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_hostnames(cls, hostnames: Iterable[str]) -> "NodeSet":
        """Fold an explicit hostname list (the cluster's machine file)."""
        ns = cls()
        for name in hostnames:
            m = _SINGLE_RE.match(name)
            if m is not None:
                ns._merge(
                    m.group("prefix"),
                    RangeSet(m.group("index")),
                )
            else:
                ns._plain.add(name)
        return ns

    # ------------------------------------------------------------------
    # Set algebra (prefix-wise)
    # ------------------------------------------------------------------
    def union(self, other: "NodeSet") -> "NodeSet":
        out = NodeSet()
        out._plain = self._plain | other._plain
        for prefix in set(self._groups) | set(other._groups):
            a = self._groups.get(prefix)
            b = other._groups.get(prefix)
            out._groups[prefix] = a.union(b) if a and b else (a or b)
        return out

    def intersection(self, other: "NodeSet") -> "NodeSet":
        out = NodeSet()
        out._plain = self._plain & other._plain
        for prefix in set(self._groups) & set(other._groups):
            rs = self._groups[prefix].intersection(other._groups[prefix])
            if rs:
                out._groups[prefix] = rs
        return out

    def difference(self, other: "NodeSet") -> "NodeSet":
        out = NodeSet()
        out._plain = self._plain - other._plain
        for prefix, rs in self._groups.items():
            rem = rs.difference(other._groups[prefix]) if prefix in other._groups else rs
            if rem:
                out._groups[prefix] = rem
        return out

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, hostname: str) -> bool:
        if hostname in self._plain:
            return True
        m = _SINGLE_RE.match(hostname)
        if m is None:
            return False
        rs = self._groups.get(m.group("prefix"))
        return rs is not None and int(m.group("index")) in rs

    def __len__(self) -> int:
        return len(self._plain) + sum(len(rs) for rs in self._groups.values())

    def __bool__(self) -> bool:
        return bool(self._plain) or bool(self._groups)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NodeSet)
            and self._plain == other._plain
            and self._groups == other._groups
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._plain), tuple(sorted(self._groups.items(), key=lambda kv: kv[0]))))

    def __iter__(self) -> Iterator[str]:
        for name in sorted(self._plain):
            yield name
        for prefix in sorted(self._groups):
            rs = self._groups[prefix]
            for idx in rs:
                yield f"{prefix}{_pad(idx, rs.padding)}"

    def __getitem__(self, rank):
        """The ``rank``-th hostname (or a NodeSet for a slice)."""
        if isinstance(rank, slice):
            idx = range(len(self))[rank]
            out = NodeSet()
            if idx.step == 1:
                lo, hi = idx.start, idx.stop
                seen = 0
                for name in sorted(self._plain):
                    if lo <= seen < hi:
                        out._plain.add(name)
                    seen += 1
                for prefix in sorted(self._groups):
                    rs = self._groups[prefix]
                    part = rs.slice(max(lo - seen, 0), max(hi - seen, 0))
                    if part:
                        out._groups[prefix] = part
                    seen += len(rs)
                return out
            return NodeSet.from_hostnames(self[i] for i in idx)
        n = len(self)
        if rank < 0:
            rank += n
        if not 0 <= rank < n:
            raise IndexError(rank)
        plain = sorted(self._plain)
        if rank < len(plain):
            return plain[rank]
        rank -= len(plain)
        for prefix in sorted(self._groups):
            rs = self._groups[prefix]
            if rank < len(rs):
                return f"{prefix}{_pad(rs[rank], rs.padding)}"
            rank -= len(rs)
        raise IndexError(rank)  # pragma: no cover - unreachable

    def index(self, hostname: str) -> int:
        """Rank of ``hostname`` (inverse of ``self[rank]``)."""
        plain = sorted(self._plain)
        if hostname in self._plain:
            return plain.index(hostname)
        m = _SINGLE_RE.match(hostname)
        rank = len(plain)
        if m is not None:
            for prefix in sorted(self._groups):
                rs = self._groups[prefix]
                if prefix == m.group("prefix"):
                    return rank + rs.index(int(m.group("index")))
                rank += len(rs)
        raise ValueError(f"{hostname!r} not in {self}")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = sorted(self._plain)
        for prefix in sorted(self._groups):
            rs = self._groups[prefix]
            ranges = str(rs)
            if len(rs) == 1 and "-" not in ranges:
                parts.append(f"{prefix}{ranges}")
            else:
                parts.append(f"{prefix}[{ranges}]")
        return ",".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeSet({str(self)!r})"


def _split_patterns(spec: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    parts: list[str] = []
    depth = 0
    cur = ""
    for ch in spec:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced brackets in {spec!r}")
        if ch == "," and depth == 0:
            if cur.strip():
                parts.append(cur.strip())
            cur = ""
        else:
            cur += ch
    if depth != 0:
        raise ValueError(f"unbalanced brackets in {spec!r}")
    if cur.strip():
        parts.append(cur.strip())
    return parts
