#!/usr/bin/env python3
"""Quickstart: checkpoint and restart your first computation.

Mirrors the paper's Section 3 user experience:

    dmtcp_checkpoint myapp         # run under DMTCP
    dmtcp command --checkpoint     # snapshot everything
    dmtcp_restart ckpt_*.dmtcp     # bring it back (here: on another node)

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.core.launch import DmtcpComputation


def counter(sys, argv):
    """A long-running job: counts, prints progress via its log list."""
    log = argv_log  # noqa: F821  (bound below)
    for i in range(30):
        yield from sys.sleep(0.2)
        log.append(i)
        host = yield from sys.gethostname()
        pid = yield from sys.getpid()
        if i % 10 == 0:
            print(f"  [app] tick {i} on {host} (pid {pid})")


def main() -> None:
    # a 2-node simulated cluster
    world = build_cluster(n_nodes=2, seed=7)
    log: list = []
    global argv_log
    argv_log = log
    world.register_program("counter", counter)

    # dmtcp_checkpoint counter  -- launches the coordinator + the app
    comp = DmtcpComputation(world)
    comp.launch("node00", "counter")
    world.engine.run(until=2.0)
    print(f"app progressed to tick {log[-1]} on node00")

    # dmtcp command --checkpoint (with --kill: we simulate a failure)
    outcome = comp.checkpoint(kill=True)
    rec = outcome.records[0]
    print(f"checkpoint #{outcome.ckpt_id} took {outcome.duration:.3f}s "
          f"(image {rec.stored_bytes / 2**20:.1f} MB gz)")
    print("stage breakdown:",
          {k: f"{v * 1000:.1f}ms" for k, v in rec.stages.items()})

    # dmtcp_restart -- on the *other* node (process migration)
    restart = comp.restart(placement={"node00": "node01"})
    print(f"restart took {restart.duration:.3f}s; continuing on node01...")
    world.engine.run(until=world.engine.now + 10.0)

    assert log == list(range(30)), "no tick lost or repeated!"
    print(f"done: all 30 ticks accounted for exactly once. {log[-5:]}")


if __name__ == "__main__":
    main()
