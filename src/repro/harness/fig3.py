"""Figure 3: the 21 desktop applications, single node, compression on.

3a: checkpoint and restart times; 3b: checkpoint sizes (MB).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.apps.profiles import APP_PROFILES
from repro.apps.shell_apps import program_for
from repro.core.launch import DmtcpComputation
from repro.harness.experiment import (
    MB,
    DesktopResult,
    build_desktop,
    checkpoint_and_restart_cycle,
)


def run_fig3_app(app: str, seed: int = 0, warmup_s: float = 3.0) -> DesktopResult:
    """Measure one Figure 3 application end to end (ckpt + restart)."""
    world = build_desktop(seed)
    comp = DmtcpComputation(world)
    comp.launch("node00", program_for(app))
    ckpt, restart = checkpoint_and_restart_cycle(world, comp, warmup_until=warmup_s)
    return DesktopResult(
        app=app,
        checkpoint_s=ckpt.duration,
        restart_s=restart.duration,
        stored_mb=ckpt.total_stored_bytes / MB,
        image_mb=ckpt.total_image_bytes / MB,
        processes=len(ckpt.records),
    )


def run_fig3(
    apps: Optional[Iterable[str]] = None, seed: int = 0
) -> list[DesktopResult]:
    """The full Figure 3 sweep (or a subset)."""
    rows = []
    for app in apps or APP_PROFILES:
        rows.append(run_fig3_app(app, seed=seed))
    return rows
