"""Figure 5: checkpoint/restart time vs number of ParGeant4 processes.

ParGeant4 under MPICH2, compression on, 1 compute process per core and
4 per node: the node count varies with the process count (16..128
compute processes on 4..32 nodes).  "An additional 21 to 161 MPICH2
resource management processes are also checkpointed."

5a writes checkpoints to each node's local disk; 5b to the centralized
RAID device (8 nodes over the Fibre Channel SAN, 24 over NFS).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.launch import DmtcpComputation
from repro.harness.experiment import MB, build_world, checkpoint_and_restart_cycle
from repro.harness.fig4 import register_fig4


@dataclass
class Fig5Point:
    """One x-axis point of Figure 5."""

    compute_processes: int
    nodes: int
    total_processes: int
    checkpoint_s: float
    restart_s: float
    aggregate_stored_mb: float
    storage: str  # "local" | "san"


def run_fig5_point(
    compute_processes: int,
    storage: str = "local",
    seed: int = 0,
    procs_per_node: int = 4,
    warmup_s: float = 8.0,
    tree_fanout: int | None = None,
    store: bool = False,
    store_replicas: int | None = None,
) -> Fig5Point:
    """One x-axis point of Figure 5a (local) or 5b (SAN/NFS).

    ``tree_fanout`` routes coordination through the hierarchical gateway
    tree (repro.coord.tree) instead of the paper's flat star -- the
    opt-in 4k/16k/32k extension points beyond the paper's axis.
    ``store`` swaps monolithic image files for the content-addressed
    chunk store (DESIGN.md §12).
    """
    n_nodes = max(compute_processes // procs_per_node, 1)
    world = build_world(n_nodes, seed, with_san=(storage == "san"))
    register_fig4(world)
    if storage == "san":
        _mount_san_ckpt_dir(world)
    comp = DmtcpComputation(
        world,
        compression=True,
        ckpt_dir="/san/dmtcp" if storage == "san" else "/tmp/dmtcp",
        tree_fanout=tree_fanout,
        store=store,
        store_replicas=store_replicas,
    )
    comp.launch(
        "node00",
        "mpich2_job",
        ["mpich2_job", str(compute_processes), "pargeant4", "1000000", "0.05"],
        env={"MPI_LAZY_CONNECT": "1"},
    )
    ckpt, restart = checkpoint_and_restart_cycle(world, comp, warmup_s)
    return Fig5Point(
        compute_processes=compute_processes,
        nodes=n_nodes,
        total_processes=len(ckpt.records),
        checkpoint_s=ckpt.duration,
        restart_s=restart.duration,
        aggregate_stored_mb=ckpt.total_stored_bytes / MB,
        storage=storage,
    )


def run_fig5_tree_point(
    compute_processes: int,
    fanout: int = 32,
    seed: int = 0,
    procs_per_node: int = 16,
    warmup_s: float = 0.5,
) -> Fig5Point:
    """Fig-5 extension point through the coordination tree (4k/16k/32k).

    At these sizes the paper's full MPICH2 resource-management stack is
    the host-side bottleneck (per-rank wiring), not the thing under
    test, so the workload is a TOP-C-shaped standalone worker with
    ParGeant4's memory footprint: the image sizes and compression work
    are faithful while the measured axis -- barrier fan-in at the
    coordinator -- is exactly what the tree changes.
    """
    from repro.cluster import build_cluster

    n_nodes = max(compute_processes // procs_per_node, 1)
    world = build_cluster(n_nodes=n_nodes, seed=seed)
    _register_tree_worker(world)
    comp = DmtcpComputation(world, compression=True, tree_fanout=fanout)
    hostnames = world.machine.hostnames
    for i in range(compute_processes):
        comp.launch(hostnames[i % n_nodes], "pargeant4_worker")
    ckpt, restart = checkpoint_and_restart_cycle(world, comp, warmup_s)
    return Fig5Point(
        compute_processes=compute_processes,
        nodes=n_nodes,
        total_processes=len(ckpt.records),
        checkpoint_s=ckpt.duration,
        restart_s=restart.duration,
        aggregate_stored_mb=ckpt.total_stored_bytes / MB,
        storage="tree-local",
    )


def _register_tree_worker(world) -> None:
    """ParGeant4's per-process footprint without the MPI plumbing."""
    from repro.kernel.process import ProgramSpec, RegionSpec

    spec = ProgramSpec(
        "pargeant4_worker", regions=(RegionSpec("code", 12 * MB, "code"),)
    )

    def main(sys, argv):
        # physics tables, field maps, untouched arena (apps/pargeant4.py)
        yield from sys.sbrk(10 * MB, "text")
        yield from sys.sbrk(14 * MB, "numeric")
        yield from sys.mmap(4 * MB, "zero")
        while True:
            yield from sys.cpu(0.05)  # one event batch
            yield from sys.sleep(0.2)

    world.register_program("pargeant4_worker", main, spec)


def _mount_san_ckpt_dir(world) -> None:
    """Mount the shared checkpoint directory on every node: over Fibre
    Channel on the SAN clients, over NFS elsewhere (Figure 5b setup)."""
    from repro.kernel.filesystem import Namespace

    shared = Namespace("san:ckpt")
    for ns in world.nodes.values():
        ns.mounts.add("/san", shared, "san")
