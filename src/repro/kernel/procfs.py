"""/proc-style introspection.

MTCP discovers what to checkpoint by parsing ``/proc/self/maps``; the
runCMS case study counts its 540 dynamic libraries the same way.  This
module renders the equivalent views from simulated kernel state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.process import Process

_KIND_NAMES = {
    "code": "r-xp",
    "lib": "r-xp",
    "data": "rw-p",
    "heap": "rw-p",
    "stack": "rw-p",
    "anon": "rw-p",
    "shm": "rw-s",
}


def render_maps(process: "Process") -> str:
    """Render the process's mappings like ``/proc/<pid>/maps``."""
    lines = []
    for region in sorted(process.address_space.regions, key=lambda r: r.start):
        perms = _KIND_NAMES.get(region.kind, region.perms)
        path = region.path or (f"[{region.kind}]" if region.kind != "anon" else "")
        lines.append(
            f"{region.start:012x}-{region.end:012x} {perms} 00000000 00:00 "
            f"{region.region_id} {path}"
        )
    return "\n".join(lines)


def count_libraries(process: "Process") -> int:
    """Number of mapped dynamic libraries (the runCMS '540 dylibs' metric)."""
    return sum(1 for r in process.address_space.regions if r.kind == "lib")


def render_fds(process: "Process") -> str:
    """Render the FD table like ``ls -l /proc/<pid>/fd``."""
    lines = []
    for fd in sorted(process.fds):
        desc = process.fds[fd].description
        lines.append(f"{fd} -> {type(desc).__name__}:{getattr(desc, 'inode', '?')}")
    return "\n".join(lines)
